module Request = Dp_trace.Request
module Hint = Dp_trace.Hint

type disk_stats = {
  disk : int;
  requests : int;
  energy_j : float;
  busy_ms : float;
  idle_ms : float;
  standby_ms : float;
  transition_ms : float;
  spin_downs : int;
  spin_ups : int;
  speed_changes : int;
  response_ms_total : float;
  response_ms_max : float;
  last_completion_ms : float;
}

type result = {
  policy : string;
  per_disk : disk_stats array;
  energy_j : float;
  io_time_ms : float;
  makespan_ms : float;
  timeline : Timeline.t option;
}

(* Mutable per-disk simulation state. *)
type disk_state = {
  id : int;
  mutable now : float;  (* time up to which the timeline is accounted *)
  mutable rpm : int;  (* current rotation speed (DRPM); rpm_max otherwise *)
  mutable reqs : int;
  mutable energy : float;
  mutable busy : float;
  mutable idle : float;
  mutable standby : float;
  mutable transition : float;
  mutable downs : int;
  mutable ups : int;
  mutable shifts : int;
  mutable resp_total : float;
  mutable resp_max : float;
  (* DRPM window accounting *)
  mutable win_count : int;
  mutable win_resp : float;
  mutable win_nominal : float;
  mutable last_end : int;  (* address right after the previous request; -1 initially *)
  mutable hints : Hint.t list;  (* pending compiler directives, by nominal time *)
  record : bool;
  mutable segs : Timeline.segment list;  (* reversed *)
}

let make_state ?(record = false) model id =
  {
    id;
    now = 0.0;
    rpm = model.Disk_model.rpm_max;
    reqs = 0;
    energy = 0.0;
    busy = 0.0;
    idle = 0.0;
    standby = 0.0;
    transition = 0.0;
    downs = 0;
    ups = 0;
    shifts = 0;
    resp_total = 0.0;
    resp_max = 0.0;
    win_count = 0;
    win_resp = 0.0;
    win_nominal = 0.0;
    last_end = -1;
    hints = [];
    record;
    segs = [];
  }

let ms_of_s s = s *. 1000.0
let energy_j_of ~watts ~ms = watts *. ms /. 1000.0

let record_span st ~start ~stop state =
  if st.record && stop > start then
    st.segs <- { Timeline.start_ms = start; stop_ms = stop; state } :: st.segs

let spend_idle model st ms =
  if ms > 0.0 then begin
    st.idle <- st.idle +. ms;
    st.energy <- st.energy +. energy_j_of ~watts:(Disk_model.idle_power_w model ~rpm:st.rpm) ~ms;
    record_span st ~start:st.now ~stop:(st.now +. ms) (Timeline.Idle st.rpm);
    st.now <- st.now +. ms
  end

let spend_standby model st ms =
  if ms > 0.0 then begin
    st.standby <- st.standby +. ms;
    st.energy <- st.energy +. energy_j_of ~watts:model.Disk_model.power_standby_w ~ms;
    record_span st ~start:st.now ~stop:(st.now +. ms) Timeline.Standby;
    st.now <- st.now +. ms
  end

(* --- gap handling: advance the state from st.now to [until] --- *)

let gap_no_pm model st ~until = if until > st.now then spend_idle model st (until -. st.now)

(* TPM: idle up to the threshold, then spin down (13 J / 1.5 s), stay in
   standby.  Returns [true] when the disk ends the gap spun down. *)
let gap_tpm model (cfg : Policy.tpm_config) st ~until =
  let gap = until -. st.now in
  if gap <= 0.0 then false
  else begin
    let threshold = ms_of_s cfg.Policy.idle_threshold_s in
    if gap <= threshold then begin
      spend_idle model st gap;
      false
    end
    else begin
      spend_idle model st threshold;
      (* Spin down. *)
      let sd_ms = ms_of_s model.Disk_model.spin_down_s in
      st.transition <- st.transition +. Float.min sd_ms (until -. st.now);
      st.energy <- st.energy +. model.Disk_model.spin_down_j;
      st.downs <- st.downs + 1;
      record_span st ~start:st.now ~stop:(st.now +. sd_ms) Timeline.Transition;
      st.now <- st.now +. sd_ms;
      (* If the next arrival lands inside the spin-down, st.now already
         passed [until]; the standby span is empty. *)
      if until > st.now then spend_standby model st (until -. st.now);
      true
    end
  end

(* Compiler-directed TPM (proactive): the schedule is known, so when the
   predicted gap can absorb a full spin-down/spin-up cycle the disk spins
   down immediately and the spin-up completes exactly at the next
   arrival; otherwise the disk just idles.  No reactive stall. *)
let gap_tpm_proactive model (cfg : Policy.tpm_config) st ~until ~terminal =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let sd_ms = ms_of_s model.Disk_model.spin_down_s in
    let su_ms = ms_of_s model.Disk_model.spin_up_s in
    let threshold =
      Float.max (ms_of_s cfg.Policy.idle_threshold_s) (sd_ms +. su_ms)
    in
    if gap <= threshold then spend_idle model st gap
    else begin
      st.transition <- st.transition +. sd_ms;
      st.energy <- st.energy +. model.Disk_model.spin_down_j;
      st.downs <- st.downs + 1;
      record_span st ~start:st.now ~stop:(st.now +. sd_ms) Timeline.Transition;
      st.now <- st.now +. sd_ms;
      if terminal then begin
        (* No next request: stay in standby to the end of the window. *)
        if until > st.now then spend_standby model st (until -. st.now)
      end
      else begin
        spend_standby model st (until -. su_ms -. st.now);
        st.transition <- st.transition +. su_ms;
        st.energy <- st.energy +. model.Disk_model.spin_up_j;
        st.ups <- st.ups + 1;
        record_span st ~start:st.now ~stop:until Timeline.Transition;
        st.now <- until
      end
    end
  end

(* --- compiler hints: consume the directives addressed to a gap --- *)

(* Hints are timestamped on the nominal (full-speed) timeline and so is
   every request's [arrival_ms]; matching on nominal time keeps the
   routing immune to closed-loop drift between nominal and actual
   clocks. *)
let take_hints st ~upto =
  let rec go acc = function
    | (h : Hint.t) :: rest when h.Hint.at_ms <= upto +. 1e-9 -> go (h :: acc) rest
    | rest ->
        st.hints <- rest;
        List.rev acc
  in
  go [] st.hints

let hint_spin_down hs = List.exists (fun (h : Hint.t) -> h.Hint.action = Hint.Spin_down) hs

let hint_lead hs =
  List.find_map
    (fun (h : Hint.t) ->
      match h.Hint.action with Hint.Pre_spin_up l -> Some l | _ -> None)
    hs

let hint_target_rpm hs =
  List.find_map
    (fun (h : Hint.t) ->
      match h.Hint.action with Hint.Set_rpm r -> Some r | _ -> None)
    hs

(* Hint-directed TPM: the compiler ordered a spin-down for this gap, and
   (when the gap is interior) a pre-spin-up [lead] ms before the next
   access.  Unlike the omniscient proactive handler there is no
   threshold heuristic: the disk trusts the directive and spins down at
   the start of the gap.  Without a pre-spin-up directive the spin-up is
   reactive and stalls — hiding the latency is exactly what the
   [Pre_spin_up] hint exists for. *)
let gap_tpm_hinted model st ~until ~terminal ~spin_down ~lead =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let sd_ms = ms_of_s model.Disk_model.spin_down_s in
    let su_ms = ms_of_s model.Disk_model.spin_up_s in
    (* Closed-loop drift can shrink a hinted gap below what the compiler
       saw on the nominal timeline; refuse directives that no longer
       fit. *)
    let feasible = if terminal then gap >= sd_ms else gap >= sd_ms +. su_ms in
    if not (spin_down && feasible) then spend_idle model st gap
    else begin
      st.transition <- st.transition +. sd_ms;
      st.energy <- st.energy +. model.Disk_model.spin_down_j;
      st.downs <- st.downs + 1;
      record_span st ~start:st.now ~stop:(st.now +. sd_ms) Timeline.Transition;
      st.now <- st.now +. sd_ms;
      if terminal then spend_standby model st (until -. st.now)
      else begin
        let start_up =
          match lead with
          | None -> until (* no pre-activation directive: reactive stall *)
          | Some l -> Float.max st.now (until -. l)
        in
        spend_standby model st (start_up -. st.now);
        st.transition <- st.transition +. su_ms;
        st.energy <- st.energy +. model.Disk_model.spin_up_j;
        st.ups <- st.ups + 1;
        record_span st ~start:st.now ~stop:(st.now +. su_ms) Timeline.Transition;
        st.now <- st.now +. su_ms;
        (* A generous lead brings the platters up early: idle at speed. *)
        if until > st.now then spend_idle model st (until -. st.now)
      end
    end
  end

(* DRPM: step the speed down one level per [downshift_idle_ms] of
   continuous idleness (plus the transition itself), then idle at the
   reached speed. *)
let drpm_shift model st ~rpm_to =
  let ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
  st.transition <- st.transition +. ms;
  st.energy <- st.energy +. Disk_model.drpm_transition_j model ~rpm_from:st.rpm ~rpm_to;
  record_span st ~start:st.now ~stop:(st.now +. ms) Timeline.Transition;
  st.now <- st.now +. ms;
  st.rpm <- rpm_to;
  st.shifts <- st.shifts + 1

let drpm_floor model (cfg : Policy.drpm_config) =
  match cfg.Policy.min_rpm with
  | Some r -> max r model.Disk_model.rpm_min
  | None -> model.Disk_model.rpm_min

let gap_drpm model (cfg : Policy.drpm_config) st ~until =
  let continue = ref true in
  let first = ref true in
  let floor_rpm = drpm_floor model cfg in
  while !continue do
    let remaining = until -. st.now in
    let next_rpm = st.rpm - model.Disk_model.rpm_step in
    (* Hysteresis against thrash: the first downshift of a gap waits
       twice the per-level idle threshold. *)
    let wait =
      if !first then 2.0 *. cfg.Policy.downshift_idle_ms else cfg.Policy.downshift_idle_ms
    in
    if
      next_rpm >= floor_rpm
      && remaining >= wait +. ms_of_s (Disk_model.drpm_level_transition_s model)
    then begin
      spend_idle model st wait;
      drpm_shift model st ~rpm_to:next_rpm;
      first := false
    end
    else continue := false
  done;
  if until > st.now then spend_idle model st (until -. st.now)

(* Compiler-directed DRPM (proactive): the gap's speed trajectory is
   planned — drop straight to the deepest level whose down-and-up round
   trip (plus a dwell of one downshift threshold) fits the gap, idle
   there, and be back at full speed exactly at the next arrival.  A
   [Set_rpm] hint caps the dip at the compiler's target speed (computed
   from the nominal gap); feasibility against the actual gap still
   rules, so a drifted gap degrades to a shallower dip, never a stall. *)
let gap_drpm_proactive ?target_rpm model (cfg : Policy.drpm_config) st ~until ~terminal =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let step_ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
    let floor_rpm =
      match target_rpm with
      | Some r -> max (drpm_floor model cfg) (min r model.Disk_model.rpm_max)
      | None -> drpm_floor model cfg
    in
    let max_levels = (st.rpm - floor_rpm) / model.Disk_model.rpm_step in
    let fits levels =
      let ramp = float_of_int levels *. step_ms in
      gap >= (2.0 *. ramp) +. cfg.Policy.downshift_idle_ms
    in
    let rec deepest l = if l > 0 && not (fits l) then deepest (l - 1) else l in
    let levels = deepest max_levels in
    if levels = 0 then spend_idle model st gap
    else begin
      let top = st.rpm in
      let low = st.rpm - (levels * model.Disk_model.rpm_step) in
      (* Ramp down... *)
      let rec down () =
        if st.rpm > low then begin
          drpm_shift model st ~rpm_to:(st.rpm - model.Disk_model.rpm_step);
          down ()
        end
      in
      down ();
      if terminal then begin
        (* No next request: stay low to the end of the window. *)
        if until > st.now then spend_idle model st (until -. st.now)
      end
      else begin
        (* ...idle at the floor, then ramp up to finish at [until]. *)
        let ramp_up = float_of_int levels *. step_ms in
        if until -. ramp_up > st.now then spend_idle model st (until -. ramp_up -. st.now);
        let rec up () =
          if st.rpm < top then begin
            drpm_shift model st ~rpm_to:(st.rpm + model.Disk_model.rpm_step);
            up ()
          end
        in
        up ();
        st.now <- Float.max st.now until
      end
    end
  end

(* --- servicing --- *)

let serve model st ~arrival ~lba ~bytes ~rpm =
  let seek_distance = if st.last_end < 0 then max_int else lba - st.last_end in
  let start = Float.max arrival st.now in
  (* The disk is idle between st.now and a later start only when it was
     left ready before the arrival; gap handlers already advanced st.now
     to the arrival for gaps, so any remainder here is spin-up overhang
     (st.now > arrival) or zero. *)
  if start > st.now then spend_idle model st (start -. st.now);
  let service = Disk_model.service_ms ~seek_distance model ~rpm ~bytes in
  st.last_end <- lba + bytes;
  st.busy <- st.busy +. service;
  st.energy <- st.energy +. energy_j_of ~watts:(Disk_model.active_power_w model ~rpm) ~ms:service;
  record_span st ~start:st.now ~stop:(st.now +. service) Timeline.Busy;
  st.now <- st.now +. service;
  let response = st.now -. arrival in
  st.reqs <- st.reqs + 1;
  st.resp_total <- st.resp_total +. response;
  if response > st.resp_max then st.resp_max <- response;
  response

(* DRPM window bookkeeping: after [window_size] requests compare the
   window's average response with its full-speed service average and
   shift up one level on degradation beyond the tolerance. *)
let drpm_window model (cfg : Policy.drpm_config) st ~response ~nominal =
  st.win_count <- st.win_count + 1;
  st.win_resp <- st.win_resp +. response;
  st.win_nominal <- st.win_nominal +. nominal;
  if st.win_count >= cfg.Policy.window_size then begin
    let avg = st.win_resp /. float_of_int st.win_count in
    let nominal = st.win_nominal /. float_of_int st.win_count in
    (* On degradation beyond the tolerance the controller orders the
       disk back to full speed (Gurumurthi et al.). *)
    if avg > cfg.Policy.tolerance *. nominal && st.rpm < model.Disk_model.rpm_max then begin
      drpm_shift model st ~rpm_to:model.Disk_model.rpm_max;
      st.ups <- st.ups + 1
    end;
    st.win_count <- 0;
    st.win_resp <- 0.0;
    st.win_nominal <- 0.0
  end

(* Serve request [r] issued at [issue] (closed-loop actual time).
   [hinted] says whether the simulation carries a compiler hint stream:
   a proactive policy with hints executes the directives, a proactive
   policy without falls back to the omniscient gap planner.  Returns the
   response time. *)
let handle_request model policy st (r : Request.t) ~issue ~hinted =
  match policy with
  | Policy.No_pm ->
      if issue > st.now then gap_no_pm model st ~until:issue;
      serve model st ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max
  | Policy.Tpm cfg when cfg.Policy.proactive ->
      if hinted then begin
        let hs = take_hints st ~upto:r.Request.arrival_ms in
        if issue > st.now then
          gap_tpm_hinted model st ~until:issue ~terminal:false
            ~spin_down:(hint_spin_down hs) ~lead:(hint_lead hs)
      end
      else if issue > st.now then
        gap_tpm_proactive model cfg st ~until:issue ~terminal:false;
      serve model st ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max
  | Policy.Tpm cfg ->
      let spun_down = if issue > st.now then gap_tpm model cfg st ~until:issue else false in
      if spun_down then begin
        (* Reactive spin-up: starts at the arrival (or at the end of an
           in-flight spin-down), delays the service. *)
        let su_ms = ms_of_s model.Disk_model.spin_up_s in
        st.now <- Float.max st.now issue;
        st.transition <- st.transition +. su_ms;
        st.energy <- st.energy +. model.Disk_model.spin_up_j;
        st.ups <- st.ups + 1;
        record_span st ~start:st.now ~stop:(st.now +. su_ms) Timeline.Transition;
        st.now <- st.now +. su_ms
      end;
      serve model st ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max
  | Policy.Drpm cfg ->
      (if cfg.Policy.proactive && hinted then begin
         let hs = take_hints st ~upto:r.Request.arrival_ms in
         if issue > st.now then begin
           match hint_target_rpm hs with
           | Some rpm ->
               gap_drpm_proactive ~target_rpm:rpm model cfg st ~until:issue
                 ~terminal:false
           | None ->
               (* No directive: the compiler planned no dip for this gap. *)
               spend_idle model st (issue -. st.now)
         end
       end
       else if issue > st.now then begin
         if cfg.Policy.proactive then
           gap_drpm_proactive model cfg st ~until:issue ~terminal:false
         else gap_drpm model cfg st ~until:issue
       end);
      let seek_distance = if st.last_end < 0 then max_int else r.lba - st.last_end in
      let nominal =
        Disk_model.service_ms ~seek_distance model ~rpm:model.Disk_model.rpm_max
          ~bytes:r.size
      in
      let response =
        serve model st ~arrival:issue ~lba:r.lba ~bytes:r.size ~rpm:st.rpm
      in
      (* Ramp back toward full speed one level per serviced request: RPM
         transitions overlap servicing (the low-overhead dynamic-RPM
         design of Gurumurthi et al.), so only the energy is charged. *)
      if st.rpm < model.Disk_model.rpm_max then begin
        let rpm_to = st.rpm + model.Disk_model.rpm_step in
        st.energy <- st.energy +. Disk_model.drpm_transition_j model ~rpm_from:st.rpm ~rpm_to;
        st.rpm <- rpm_to;
        st.shifts <- st.shifts + 1;
        if rpm_to = model.Disk_model.rpm_max then st.ups <- st.ups + 1
      end;
      drpm_window model cfg st ~response ~nominal;
      response

(* Trailing window: account the timeline from the last completion to the
   global makespan, with no arrival to terminate the gap. *)
let handle_trailing model policy st ~until ~hinted =
  if until > st.now then begin
    match policy with
    | Policy.No_pm -> gap_no_pm model st ~until
    | Policy.Tpm cfg when cfg.Policy.proactive ->
        if hinted then
          let hs = take_hints st ~upto:infinity in
          gap_tpm_hinted model st ~until ~terminal:true
            ~spin_down:(hint_spin_down hs) ~lead:None
        else gap_tpm_proactive model cfg st ~until ~terminal:true
    | Policy.Tpm cfg -> ignore (gap_tpm model cfg st ~until)
    | Policy.Drpm cfg when cfg.Policy.proactive ->
        if hinted then begin
          let hs = take_hints st ~upto:infinity in
          match hint_target_rpm hs with
          | Some rpm ->
              gap_drpm_proactive ~target_rpm:rpm model cfg st ~until ~terminal:true
          | None -> spend_idle model st (until -. st.now)
        end
        else gap_drpm_proactive model cfg st ~until ~terminal:true
    | Policy.Drpm cfg -> gap_drpm model cfg st ~until
  end;
  (* A TPM spin-down may overshoot [until]; clamp for reporting. *)
  if st.now > until then st.now <- until

let stats_of_state st ~last_completion =
  {
    disk = st.id;
    requests = st.reqs;
    energy_j = st.energy;
    busy_ms = st.busy;
    idle_ms = st.idle;
    standby_ms = st.standby;
    transition_ms = st.transition;
    spin_downs = st.downs;
    spin_ups = st.ups;
    speed_changes = st.shifts;
    response_ms_total = st.resp_total;
    response_ms_max = st.resp_max;
    last_completion_ms = last_completion;
  }

(* Closed-loop simulation: each processor replays its request stream in
   order, issuing a request [think_ms] after its previous completion.
   Segment barriers synchronize all processors.  Disks are FIFO in issue
   order; their power trajectory over each inter-arrival gap is decided
   by the policy. *)
let simulate ?(model = Disk_model.ultrastar_36z15) ?(record_timeline = false) ?(hints = [])
    ~disks policy reqs =
  if disks < 1 then invalid_arg "Engine.simulate: disks must be >= 1";
  List.iter
    (fun (r : Request.t) ->
      if r.disk < 0 || r.disk >= disks then
        invalid_arg (Printf.sprintf "Engine.simulate: request on disk %d of %d" r.disk disks))
    reqs;
  List.iter
    (fun (h : Hint.t) ->
      if h.Hint.disk < 0 || h.Hint.disk >= disks then
        invalid_arg
          (Printf.sprintf "Engine.simulate: hint on disk %d of %d" h.Hint.disk disks))
    hints;
  let hinted = hints <> [] in
  let reqs = List.sort Request.compare_arrival reqs in
  let n_proc =
    1 + List.fold_left (fun acc (r : Request.t) -> max acc r.proc) (-1) reqs
  in
  let n_seg = 1 + List.fold_left (fun acc (r : Request.t) -> max acc r.seg) 0 reqs in
  (* Per (segment, proc) queues, preserving per-proc issue order. *)
  let queues : Request.t list array array =
    Array.init n_seg (fun _ -> Array.make (max n_proc 1) [])
  in
  List.iter (fun (r : Request.t) -> queues.(r.seg).(r.proc) <- r :: queues.(r.seg).(r.proc)) reqs;
  Array.iter
    (fun per_proc -> Array.iteri (fun p q -> per_proc.(p) <- List.rev q) per_proc)
    queues;
  let states = Array.init disks (make_state ~record:record_timeline model) in
  List.iter
    (fun (h : Hint.t) ->
      let st = states.(h.Hint.disk) in
      st.hints <- h :: st.hints)
    (List.rev (List.stable_sort Hint.compare_at hints));
  let last_completion = Array.make disks 0.0 in
  let clocks = Array.make (max n_proc 1) 0.0 in
  for seg = 0 to n_seg - 1 do
    let pending = Array.copy queues.(seg) in
    let next_issue p =
      match pending.(p) with
      | [] -> infinity
      | r :: _ -> clocks.(p) +. r.Request.think_ms
    in
    let rec step () =
      (* Pick the processor with the earliest next issue time. *)
      let best = ref (-1) and best_t = ref infinity in
      for p = 0 to n_proc - 1 do
        let t = next_issue p in
        if t < !best_t then begin
          best := p;
          best_t := t
        end
      done;
      if !best >= 0 then begin
        let p = !best in
        match pending.(p) with
        | [] -> assert false
        | r :: rest ->
            pending.(p) <- rest;
            let st = states.(r.Request.disk) in
            let response = handle_request model policy st r ~issue:!best_t ~hinted in
            ignore response;
            clocks.(p) <- !best_t +. response;
            last_completion.(r.Request.disk) <- st.now;
            step ()
      end
    in
    step ();
    (* Fork-join barrier. *)
    let latest = Array.fold_left max 0.0 clocks in
    Array.fill clocks 0 (Array.length clocks) latest
  done;
  let makespan = Array.fold_left max 0.0 last_completion in
  Array.iter (fun st -> handle_trailing model policy st ~until:makespan ~hinted) states;
  let per_disk =
    Array.mapi (fun d st -> stats_of_state st ~last_completion:last_completion.(d)) states
  in
  {
    policy = Policy.name policy;
    per_disk;
    energy_j = Array.fold_left (fun acc (s : disk_stats) -> acc +. s.energy_j) 0.0 per_disk;
    io_time_ms =
      Array.fold_left (fun acc (s : disk_stats) -> acc +. s.response_ms_total) 0.0 per_disk;
    makespan_ms = makespan;
    timeline =
      (if record_timeline then Some (Array.map (fun st -> List.rev st.segs) states)
       else None);
  }

let pp_disk_stats ppf s =
  Format.fprintf ppf
    "disk %d: %d reqs, %.1f J, busy %.0f ms, idle %.0f ms, standby %.0f ms, trans %.0f ms, \
     %d downs, %d ups, %d shifts, resp avg %.2f ms max %.2f ms"
    s.disk s.requests s.energy_j s.busy_ms s.idle_ms s.standby_ms s.transition_ms
    s.spin_downs s.spin_ups s.speed_changes
    (if s.requests = 0 then 0.0 else s.response_ms_total /. float_of_int s.requests)
    s.response_ms_max

let pp_result ppf r =
  Format.fprintf ppf "@[<v>policy %s: energy %.1f J, io time %.1f ms, makespan %.1f ms@,%a@]"
    r.policy r.energy_j r.io_time_ms r.makespan_ms
    (Format.pp_print_list pp_disk_stats)
    (Array.to_list r.per_disk)
