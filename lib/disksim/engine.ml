module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Fault_model = Dp_faults.Fault_model
module Injector = Dp_faults.Injector
module Repair = Dp_repair.Repair
module Sink = Dp_obs.Sink
module Obs_event = Dp_obs.Event
module Online = Dp_online.Online
module Domain_pool = Dp_util.Domain_pool

type disk_stats = {
  disk : int;
  requests : int;
  energy_j : float;
  busy_ms : float;
  idle_ms : float;
  standby_ms : float;
  transition_ms : float;
  spin_downs : int;
  spin_ups : int;
  speed_changes : int;
  spin_up_retries : int;
  media_retries : int;
  latency_spikes : int;
  degraded_ms : float;
  remaps : int;
  remap_penalty_hits : int;
  scrub_chunks : int;
  scrub_found : int;
  reconstructions : int;
  rebuild_chunks : int;
  failovers : int;
  disk_failures : int;
  rebuilds_completed : int;
  response_ms_total : float;
  response_ms_max : float;
  last_completion_ms : float;
}

type result = {
  policy : string;
  per_disk : disk_stats array;
  energy_j : float;
  io_time_ms : float;
  makespan_ms : float;
  timeline : Timeline.t option;
}

(* The fault machinery of one run: the seeded injector deciding *when*
   operations misbehave, and the controller's bounded retry/backoff
   discipline deciding *how* they are re-attempted. *)
type fault_ctx = { inj : Injector.t; retry : Policy.retry_config }


(* Mutable per-disk simulation state. *)
type disk_state = {
  id : int;
  mutable now : float;  (* time up to which the timeline is accounted *)
  mutable rpm : int;  (* current rotation speed (DRPM); rpm_max otherwise *)
  mutable reqs : int;
  mutable energy : float;
  mutable busy : float;
  mutable idle : float;
  mutable standby : float;
  mutable transition : float;
  mutable downs : int;
  mutable ups : int;
  mutable shifts : int;
  mutable su_retries : int;  (* failed spin-up attempts (fault-injected) *)
  mutable m_retries : int;  (* media-error request re-services *)
  mutable spikes : int;  (* servo recalibration stalls *)
  mutable degraded : float;  (* ms attributable to injected faults *)
  mutable resp_total : float;
  mutable resp_max : float;
  (* DRPM window accounting *)
  mutable win_count : int;
  mutable win_resp : float;
  mutable win_nominal : float;
  mutable last_end : int;  (* address right after the previous request; -1 initially *)
  mutable hints : Hint.t list;  (* pending compiler directives, by nominal time *)
  record : bool;
  mutable segs : Timeline.segment list;  (* reversed *)
  mutable sink : Sink.t;
      (* observability recorder; Sink.null by default.  Mutable because
         a sharded segment temporarily points the disks of a parallel
         group at a per-group buffering sink (see [simulate]). *)
}

let make_state ?(record = false) ?(sink = Sink.null) model id =
  {
    id;
    now = 0.0;
    rpm = model.Disk_model.rpm_max;
    reqs = 0;
    energy = 0.0;
    busy = 0.0;
    idle = 0.0;
    standby = 0.0;
    transition = 0.0;
    downs = 0;
    ups = 0;
    shifts = 0;
    su_retries = 0;
    m_retries = 0;
    spikes = 0;
    degraded = 0.0;
    resp_total = 0.0;
    resp_max = 0.0;
    win_count = 0;
    win_resp = 0.0;
    win_nominal = 0.0;
    last_end = -1;
    hints = [];
    record;
    segs = [];
    sink;
  }

(* The persistent-failure machinery of one run: the repair state machine
   (bad-sector maps, spare pools, scrub cursors, rebuild progress), the
   per-request deadline (when serving under one), and — once the states
   exist — the per-disk states themselves, so a deadline failover can
   charge the mirror read on the mirror's own timeline. *)
type repair_run = {
  rc : Repair.t;
  deadline_ms : float option;
  mutable peers : disk_state array;
}

let ms_of_s s = s *. 1000.0
let energy_j_of ~watts ~ms = watts *. ms /. 1000.0

let obs_state = function
  | Timeline.Busy -> Obs_event.Active
  | Timeline.Idle rpm -> Obs_event.Idle rpm
  | Timeline.Standby -> Obs_event.Standby
  | Timeline.Transition -> Obs_event.Transition

(* Every joule the simulation accounts lands in exactly one segment (the
   conservation invariant the tests check); lump charges with no
   duration are recorded as zero-length segments.  [charge] is the
   milliseconds credited to the state's statistic — usually
   [stop -. start] but clipped for a spin-down truncated by the next
   arrival — so a sink can reproduce the per-state stats exactly. *)
let record_span st ~start ~stop ~charge ~energy state =
  if st.record && (stop > start || energy <> 0.0) then
    st.segs <- { Timeline.start_ms = start; stop_ms = stop; state; energy_j = energy } :: st.segs;
  if Sink.enabled st.sink then
    Sink.emit st.sink
      (Obs_event.Power
         {
           disk = st.id;
           state = obs_state state;
           start_ms = start;
           stop_ms = stop;
           charge_ms = charge;
           energy_j = energy;
         })

let decision st d =
  if Sink.enabled st.sink then
    Sink.emit st.sink (Obs_event.Decision { disk = st.id; at_ms = st.now; decision = d })

let fault_event st ~at ~kind ~cost =
  if Sink.enabled st.sink then
    Sink.emit st.sink (Obs_event.Fault { disk = st.id; at_ms = at; kind; cost_ms = cost })

let repair_event st ~at ~op ~blocks ~cost =
  if Sink.enabled st.sink then
    Sink.emit st.sink
      (Obs_event.Repair { disk = st.id; at_ms = at; op; blocks; cost_ms = cost })

let spend_idle model st ms =
  if ms > 0.0 then begin
    let e = energy_j_of ~watts:(Disk_model.idle_power_w model ~rpm:st.rpm) ~ms in
    st.idle <- st.idle +. ms;
    st.energy <- st.energy +. e;
    record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e
      (Timeline.Idle st.rpm);
    st.now <- st.now +. ms
  end

let spend_standby model st ms =
  if ms > 0.0 then begin
    let e = energy_j_of ~watts:model.Disk_model.power_standby_w ~ms in
    st.standby <- st.standby +. ms;
    st.energy <- st.energy +. e;
    record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e Timeline.Standby;
    st.now <- st.now +. ms
  end

(* Busy charge at an explicit speed, outside [serve]'s local closure:
   scrub reads, rebuild writes and mirror failover reads all run at the
   owning disk's current speed and land at its timeline frontier. *)
let charge_busy model st ~rpm ~degraded ms =
  if ms > 0.0 then begin
    let e = energy_j_of ~watts:(Disk_model.active_power_w model ~rpm) ~ms in
    st.busy <- st.busy +. ms;
    st.energy <- st.energy +. e;
    if degraded then st.degraded <- st.degraded +. ms;
    record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e Timeline.Busy;
    st.now <- st.now +. ms
  end

(* --- fault-aware primitive transitions --- *)

let spin_down model st ~clip =
  let sd_ms = ms_of_s model.Disk_model.spin_down_s in
  st.transition <- st.transition +. Float.min sd_ms clip;
  st.energy <- st.energy +. model.Disk_model.spin_down_j;
  st.downs <- st.downs + 1;
  record_span st ~start:st.now ~stop:(st.now +. sd_ms) ~charge:(Float.min sd_ms clip)
    ~energy:model.Disk_model.spin_down_j Timeline.Transition;
  st.now <- st.now +. sd_ms

(* Bring the platters back to speed.  Under injected spin-up faults the
   motor needs [failures] extra attempts, each costing a full spin-up in
   both time and energy, before the one that succeeds — the retry budget
   of the policy bounds them, so the spin-up always completes. *)
let spin_up model fctx st =
  let su_ms = ms_of_s model.Disk_model.spin_up_s in
  let failures =
    match fctx with
    | None -> 0
    | Some { inj; retry } ->
        Injector.spin_up_failures inj ~disk:st.id
          ~max_failures:(retry.Policy.max_attempts - 1)
  in
  let attempt () =
    st.transition <- st.transition +. su_ms;
    st.energy <- st.energy +. model.Disk_model.spin_up_j;
    record_span st ~start:st.now ~stop:(st.now +. su_ms) ~charge:su_ms
      ~energy:model.Disk_model.spin_up_j Timeline.Transition;
    st.now <- st.now +. su_ms
  in
  for _ = 1 to failures do
    let at = st.now in
    attempt ();
    st.su_retries <- st.su_retries + 1;
    st.degraded <- st.degraded +. su_ms;
    fault_event st ~at ~kind:"spin-up-retry" ~cost:su_ms
  done;
  attempt ();
  st.ups <- st.ups + 1

(* Consult-and-maybe-trigger: a stuck-RPM fault pins the speed for a
   window, refusing the attempted transition. *)
let shift_refused fctx st =
  match fctx with
  | None -> false
  | Some { inj; _ } -> Injector.rpm_locked inj ~disk:st.id ~now_ms:st.now

let serving_degraded fctx st =
  match fctx with
  | None -> false
  | Some { inj; _ } -> Injector.is_locked inj ~disk:st.id ~now_ms:st.now

(* --- persistent-failure machinery (scrub / failover / rebuild) --- *)

(* Background scrubber: verification reads over the idle window ending
   at [until], bounded by the per-gap budget and preempted by the next
   foreground arrival — a chunk is committed only when its full cost
   (sequential read + any remap writes it triggers) fits both limits, so
   scrubbing never delays an arrival.  Runs before the policy's gap
   handler, which then manages whatever window remains. *)
let scrub_gap model rx st ~until =
  let cfg = Repair.cfg rx.rc in
  let budget = cfg.Repair.scrub_budget_ms in
  if budget > 0.0 && not (Repair.is_failed rx.rc st.id) then begin
    let spent = ref 0.0 in
    let continue_ = ref true in
    while !continue_ do
      let chunk, found = Repair.scrub_peek rx.rc ~disk:st.id ~spare:model.Disk_model.spare_blocks in
      let read_ms =
        Disk_model.service_ms ~seek_distance:max_int model ~rpm:st.rpm
          ~bytes:(chunk * cfg.Repair.block_bytes)
      in
      let cost =
        read_ms
        +. float_of_int found
           *. Disk_model.remap_ms model ~rpm:st.rpm ~block_bytes:cfg.Repair.block_bytes
      in
      if !spent +. cost <= budget && st.now +. cost <= until then begin
        let _found, pass_done = Repair.scrub_commit rx.rc ~disk:st.id ~spare:model.Disk_model.spare_blocks in
        repair_event st ~at:st.now ~op:"scrub" ~blocks:chunk ~cost;
        charge_busy model st ~rpm:st.rpm ~degraded:false cost;
        if pass_done then
          repair_event st ~at:st.now ~op:"scrub-pass" ~blocks:cfg.Repair.surface_blocks
            ~cost:0.0;
        spent := !spent +. cost
      end
      else continue_ := false
    done
  end

(* One rebuild slice copies [rebuild_chunk_blocks] from the mirror onto
   the hot spare occupying the failed slot; the factor 2 folds the
   mirror's read half into the slot's own timeline so the copy is
   charged exactly once. *)
let rebuild_slice_ms model rx st =
  let cfg = Repair.cfg rx.rc in
  let bytes = cfg.Repair.rebuild_chunk_blocks * cfg.Repair.block_bytes in
  2.0 *. Disk_model.service_ms ~seek_distance:max_int model ~rpm:st.rpm ~bytes

(* Advance the rebuild stream on a failed slot up to [until]: whole
   slices only, so the slot's timeline never overruns the foreground
   clock that called us. *)
let advance_rebuild model rx st ~until =
  let cfg = Repair.cfg rx.rc in
  let continue_ = ref true in
  while !continue_ && Repair.is_failed rx.rc st.id do
    let slice = rebuild_slice_ms model rx st in
    if st.now +. slice <= until then begin
      repair_event st ~at:st.now ~op:"rebuild" ~blocks:cfg.Repair.rebuild_chunk_blocks
        ~cost:slice;
      charge_busy model st ~rpm:st.rpm ~degraded:true slice;
      if Repair.rebuild_step rx.rc ~disk:st.id ~blocks:cfg.Repair.rebuild_chunk_blocks
      then begin
        repair_event st ~at:st.now ~op:"rebuild-complete" ~blocks:cfg.Repair.rebuild_blocks
          ~cost:0.0;
        decision st "repair:rebuild-complete"
      end
    end
    else continue_ := false
  done

(* Retire a slot onto its hot spare: the spare spins up from rest (a
   full spin-up charge over-covers any DRPM level difference) and takes
   over at full speed with an unknown head position. *)
let fail_disk model rx st =
  Repair.mark_failed rx.rc ~disk:st.id;
  let su_ms = ms_of_s model.Disk_model.spin_up_s in
  repair_event st ~at:st.now ~op:"disk-failed" ~blocks:0 ~cost:su_ms;
  decision st "repair:hot-spare-activate";
  st.transition <- st.transition +. su_ms;
  st.energy <- st.energy +. model.Disk_model.spin_up_j;
  record_span st ~start:st.now ~stop:(st.now +. su_ms) ~charge:su_ms
    ~energy:model.Disk_model.spin_up_j Timeline.Transition;
  st.now <- st.now +. su_ms;
  st.ups <- st.ups + 1;
  st.rpm <- model.Disk_model.rpm_max;
  st.last_end <- -1

(* Deadline failover: the origin disk abandons its retry storm and the
   mirror serves a clean re-read on its {e own} timeline (wherever its
   clock stands — always its frontier, so contiguity holds).  Returns
   the extra response milliseconds the client observes. *)
let failover_read model rx origin ~bytes =
  match Repair.mirror_of rx.rc origin.id with
  | Some m when not (Repair.is_failed rx.rc m) ->
      let peer = rx.peers.(m) in
      let ms = Disk_model.service_ms ~seek_distance:max_int model ~rpm:peer.rpm ~bytes in
      repair_event origin ~at:origin.now ~op:"failover" ~blocks:0 ~cost:ms;
      charge_busy model peer ~rpm:peer.rpm ~degraded:true ms;
      Repair.note_failover rx.rc ~disk:origin.id;
      Some ms
  | _ -> None

(* --- gap handling: advance the state from st.now to [until] --- *)

let gap_no_pm model st ~until = if until > st.now then spend_idle model st (until -. st.now)

(* TPM: idle up to the threshold, then spin down (13 J / 1.5 s), stay in
   standby.  Returns [true] when the disk ends the gap spun down. *)
let gap_tpm model (cfg : Policy.tpm_config) st ~until =
  let gap = until -. st.now in
  if gap <= 0.0 then false
  else begin
    let threshold = ms_of_s cfg.Policy.idle_threshold_s in
    if gap <= threshold then begin
      spend_idle model st gap;
      false
    end
    else begin
      spend_idle model st threshold;
      decision st "tpm:threshold-spin-down";
      spin_down model st ~clip:(until -. st.now);
      (* If the next arrival lands inside the spin-down, st.now already
         passed [until]; the standby span is empty. *)
      if until > st.now then spend_standby model st (until -. st.now);
      true
    end
  end

(* Compiler-directed TPM (proactive): the schedule is known, so when the
   predicted gap can absorb a full spin-down/spin-up cycle the disk spins
   down immediately and the spin-up completes exactly at the next
   arrival; otherwise the disk just idles.  No reactive stall — though an
   injected spin-up failure can still push the completion past the
   arrival, which the service path absorbs as a (bounded) stall. *)
let gap_tpm_proactive model (cfg : Policy.tpm_config) fctx st ~until ~terminal =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let sd_ms = ms_of_s model.Disk_model.spin_down_s in
    let su_ms = ms_of_s model.Disk_model.spin_up_s in
    let threshold =
      Float.max (ms_of_s cfg.Policy.idle_threshold_s) (sd_ms +. su_ms)
    in
    if gap <= threshold then spend_idle model st gap
    else begin
      decision st "tpm:planned-spin-down";
      spin_down model st ~clip:sd_ms;
      if terminal then begin
        (* No next request: stay in standby to the end of the window. *)
        if until > st.now then spend_standby model st (until -. st.now)
      end
      else begin
        spend_standby model st (until -. su_ms -. st.now);
        spin_up model fctx st
      end
    end
  end

(* --- compiler hints: consume the directives addressed to a gap --- *)

(* Hints are timestamped on the nominal (full-speed) timeline and so is
   every request's [arrival_ms]; matching on nominal time keeps the
   routing immune to closed-loop drift between nominal and actual
   clocks. *)
let take_hints st ~upto =
  let rec go acc = function
    | (h : Hint.t) :: rest when h.Hint.at_ms <= upto +. 1e-9 ->
        if Sink.enabled st.sink then
          Sink.emit st.sink
            (Obs_event.Hint_exec
               { disk = st.id; at_ms = h.Hint.at_ms; action = Hint.action_name h.Hint.action });
        go (h :: acc) rest
    | rest ->
        st.hints <- rest;
        List.rev acc
  in
  go [] st.hints

let hint_spin_down hs = List.exists (fun (h : Hint.t) -> h.Hint.action = Hint.Spin_down) hs

let hint_lead hs =
  List.find_map
    (fun (h : Hint.t) ->
      match h.Hint.action with Hint.Pre_spin_up l -> Some l | _ -> None)
    hs

let hint_target_rpm hs =
  List.find_map
    (fun (h : Hint.t) ->
      match h.Hint.action with Hint.Set_rpm r -> Some r | _ -> None)
    hs

(* Hint-directed TPM: the compiler ordered a spin-down for this gap, and
   (when the gap is interior) a pre-spin-up [lead] ms before the next
   access.  Unlike the omniscient proactive handler there is no
   threshold heuristic: the disk trusts the directive and spins down at
   the start of the gap.  Without a pre-spin-up directive the spin-up is
   reactive and stalls — hiding the latency is exactly what the
   [Pre_spin_up] hint exists for. *)
let gap_tpm_hinted model fctx st ~until ~terminal ~spin_down:do_spin_down ~lead =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let sd_ms = ms_of_s model.Disk_model.spin_down_s in
    let su_ms = ms_of_s model.Disk_model.spin_up_s in
    (* Closed-loop drift can shrink a hinted gap below what the compiler
       saw on the nominal timeline; refuse directives that no longer
       fit. *)
    let feasible = if terminal then gap >= sd_ms else gap >= sd_ms +. su_ms in
    if not (do_spin_down && feasible) then begin
      if do_spin_down then decision st "tpm:hint-infeasible";
      spend_idle model st gap
    end
    else begin
      decision st "tpm:hint-spin-down";
      spin_down model st ~clip:sd_ms;
      if terminal then spend_standby model st (until -. st.now)
      else begin
        let start_up =
          match lead with
          | None -> until (* no pre-activation directive: reactive stall *)
          | Some l -> Float.max st.now (until -. l)
        in
        spend_standby model st (start_up -. st.now);
        spin_up model fctx st;
        (* A generous lead brings the platters up early: idle at speed. *)
        if until > st.now then spend_idle model st (until -. st.now)
      end
    end
  end

(* DRPM: step the speed down one level per [downshift_idle_ms] of
   continuous idleness (plus the transition itself), then idle at the
   reached speed. *)
let drpm_shift model st ~rpm_to =
  let ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
  let e = Disk_model.drpm_transition_j model ~rpm_from:st.rpm ~rpm_to in
  st.transition <- st.transition +. ms;
  st.energy <- st.energy +. e;
  record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e Timeline.Transition;
  st.now <- st.now +. ms;
  st.rpm <- rpm_to;
  st.shifts <- st.shifts + 1

(* A speed change that a stuck-RPM fault may refuse; [true] when the
   shift happened. *)
let try_drpm_shift model fctx st ~rpm_to =
  if shift_refused fctx st then begin
    fault_event st ~at:st.now ~kind:"stuck-rpm" ~cost:0.0;
    false
  end
  else begin
    drpm_shift model st ~rpm_to;
    true
  end

let drpm_floor model (cfg : Policy.drpm_config) =
  match cfg.Policy.min_rpm with
  | Some r -> max r model.Disk_model.rpm_min
  | None -> model.Disk_model.rpm_min

let gap_drpm model (cfg : Policy.drpm_config) fctx st ~until =
  let continue = ref true in
  let first = ref true in
  let floor_rpm = drpm_floor model cfg in
  while !continue do
    let remaining = until -. st.now in
    let next_rpm = st.rpm - model.Disk_model.rpm_step in
    (* Hysteresis against thrash: the first downshift of a gap waits
       twice the per-level idle threshold. *)
    let wait =
      if !first then 2.0 *. cfg.Policy.downshift_idle_ms else cfg.Policy.downshift_idle_ms
    in
    if
      next_rpm >= floor_rpm
      && remaining >= wait +. ms_of_s (Disk_model.drpm_level_transition_s model)
    then begin
      if shift_refused fctx st then begin
        (* Stuck: pinned at the current level; idle out the gap. *)
        fault_event st ~at:st.now ~kind:"stuck-rpm" ~cost:0.0;
        continue := false
      end
      else begin
        spend_idle model st wait;
        decision st "drpm:idle-downshift";
        drpm_shift model st ~rpm_to:next_rpm;
        first := false
      end
    end
    else continue := false
  done;
  if until > st.now then spend_idle model st (until -. st.now)

(* Compiler-directed DRPM (proactive): the gap's speed trajectory is
   planned — drop straight to the deepest level whose down-and-up round
   trip (plus a dwell of one downshift threshold) fits the gap, idle
   there, and be back at full speed exactly at the next arrival.  A
   [Set_rpm] hint caps the dip at the compiler's target speed (computed
   from the nominal gap); feasibility against the actual gap still
   rules, so a drifted gap degrades to a shallower dip, never a stall.
   A stuck-RPM fault interrupting either ramp pins the trajectory at the
   reached level: the disk idles there and serves degraded — slow, never
   stalled. *)
let gap_drpm_proactive ?target_rpm model (cfg : Policy.drpm_config) fctx st ~until ~terminal =
  let gap = until -. st.now in
  if gap <= 0.0 then ()
  else begin
    let step_ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
    let floor_rpm =
      match target_rpm with
      | Some r -> max (drpm_floor model cfg) (min r model.Disk_model.rpm_max)
      | None -> drpm_floor model cfg
    in
    let max_levels = (st.rpm - floor_rpm) / model.Disk_model.rpm_step in
    let fits levels =
      let ramp = float_of_int levels *. step_ms in
      gap >= (2.0 *. ramp) +. cfg.Policy.downshift_idle_ms
    in
    let rec deepest l = if l > 0 && not (fits l) then deepest (l - 1) else l in
    let levels = deepest max_levels in
    if levels = 0 then spend_idle model st gap
    else begin
      decision st
        (match target_rpm with Some _ -> "drpm:hint-dip" | None -> "drpm:planned-dip");
      let top = st.rpm in
      let low = st.rpm - (levels * model.Disk_model.rpm_step) in
      (* Ramp down... *)
      let rec down () =
        if st.rpm > low && try_drpm_shift model fctx st ~rpm_to:(st.rpm - model.Disk_model.rpm_step)
        then down ()
      in
      down ();
      if terminal then begin
        (* No next request: stay low to the end of the window. *)
        if until > st.now then spend_idle model st (until -. st.now)
      end
      else begin
        (* ...idle at the reached floor, then ramp up to finish at
           [until]. *)
        let ramp_up =
          float_of_int ((top - st.rpm) / model.Disk_model.rpm_step) *. step_ms
        in
        if until -. ramp_up > st.now then spend_idle model st (until -. ramp_up -. st.now);
        let rec up () =
          if st.rpm < top && try_drpm_shift model fctx st ~rpm_to:(st.rpm + model.Disk_model.rpm_step)
          then up ()
        in
        up ();
        (* A refused up-shift leaves the disk below speed and behind
           plan: idle out the remainder at the pinned level (the next
           request is then served degraded). *)
        if until -. st.now > 1e-9 then spend_idle model st (until -. st.now)
        else st.now <- Float.max st.now until
      end
    end
  end

(* Online adaptive gap (Policy.Adaptive): execute the mechanism the
   controller froze at the last epoch boundary.  [Spin] behaves like
   reactive TPM with a learned threshold — the spin-up stalls the next
   arrival, there is no schedule to hide it behind.  [Dip] ramps down
   level by level after the learned threshold and dwells; the next
   request is served slow and the ramp back up overlaps servicing (the
   DRPM recovery path).  Returns [true] when the disk ends the gap spun
   down and needs a reactive spin-up. *)
let gap_adaptive model ctrl fctx st ~until ~terminal =
  let gap = until -. st.now in
  if gap <= 0.0 then false
  else
    match Online.decide ctrl ~disk:st.id with
    | Online.Stay ->
        spend_idle model st gap;
        false
    | Online.Spin threshold_ms ->
        if gap <= threshold_ms then begin
          spend_idle model st gap;
          false
        end
        else begin
          spend_idle model st threshold_ms;
          decision st "online:spin-down";
          spin_down model st ~clip:(until -. st.now);
          if until > st.now then spend_standby model st (until -. st.now);
          not terminal
        end
    | Online.Dip (target_rpm, threshold_ms) ->
        let step_ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
        let floor_rpm = max target_rpm model.Disk_model.rpm_min in
        if gap <= threshold_ms then spend_idle model st gap
        else begin
          spend_idle model st threshold_ms;
          decision st "online:dip";
          (* Ramp down as deep as the remaining gap (and the stuck-RPM
             injector) allows; the predicted gap may overshoot the real
             one, so feasibility is re-checked per level. *)
          let rec down () =
            let next = st.rpm - model.Disk_model.rpm_step in
            if
              next >= floor_rpm
              && until -. st.now >= step_ms
              && try_drpm_shift model fctx st ~rpm_to:next
            then down ()
          in
          down ();
          if until > st.now then spend_idle model st (until -. st.now)
        end;
        false

(* --- servicing --- *)

let serve model fctx rctx st ~proc ~arrival ~lba ~bytes ~rpm ~recon =
  let seek_distance = if st.last_end < 0 then max_int else lba - st.last_end in
  let start = Float.max arrival st.now in
  (* The disk is idle between st.now and a later start only when it was
     left ready before the arrival; gap handlers already advanced st.now
     to the arrival for gaps, so any remainder here is spin-up overhang
     (st.now > arrival) or zero. *)
  if start > st.now then spend_idle model st (start -. st.now);
  let spend_busy ~degraded ms =
    let e = energy_j_of ~watts:(Disk_model.active_power_w model ~rpm) ~ms in
    st.busy <- st.busy +. ms;
    st.energy <- st.energy +. e;
    if degraded then st.degraded <- st.degraded +. ms;
    record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e Timeline.Busy;
    st.now <- st.now +. ms
  in
  (* Servo recalibration: an injected latency spike stalls the head
     (at active power) before the transfer begins. *)
  (match fctx with
  | None -> ()
  | Some { inj; _ } ->
      let spike = Injector.latency_spike_ms inj ~disk:st.id in
      if spike > 0.0 then begin
        st.spikes <- st.spikes + 1;
        fault_event st ~at:st.now ~kind:"latency-spike" ~cost:spike;
        spend_busy ~degraded:true spike
      end);
  let service = Disk_model.service_ms ~seek_distance model ~rpm ~bytes in
  st.last_end <- lba + bytes;
  let stuck_slow = serving_degraded fctx st && rpm < model.Disk_model.rpm_max in
  spend_busy ~degraded:stuck_slow service;
  (* Persistent media decay: one seed-driven draw per service may grow a
     new bad sector somewhere on the surface; the first foreground touch
     of a bad block pays the remap (extra seek + spare write), later
     touches the shorter redirect penalty — the arXiv 1908.01167 cost
     shape. *)
  (match rctx with
  | None -> ()
  | Some rx ->
      let cfg = Repair.cfg rx.rc in
      (match fctx with
      | Some { inj; _ } -> (
          match Injector.decay_defect inj ~disk:st.id ~surface:cfg.Repair.surface_blocks with
          | Some block -> Repair.grow rx.rc ~disk:st.id ~block
          | None -> ())
      | None -> ());
      let touch =
        Repair.touch rx.rc ~disk:st.id ~spare:model.Disk_model.spare_blocks ~lba ~bytes
      in
      if touch.Repair.remapped > 0 then begin
        let ms =
          float_of_int touch.Repair.remapped
          *. Disk_model.remap_ms model ~rpm ~block_bytes:cfg.Repair.block_bytes
        in
        repair_event st ~at:st.now ~op:"remap" ~blocks:touch.Repair.remapped ~cost:ms;
        spend_busy ~degraded:true ms
      end;
      if touch.Repair.penalty_hits > 0 then
        spend_busy ~degraded:true
          (float_of_int touch.Repair.penalty_hits *. model.Disk_model.remap_penalty_ms);
      if recon then begin
        (* Degraded read: routed here because the home disk failed; the
           mirrored copy costs an extra head detour. *)
        Repair.note_reconstruction rx.rc ~disk:st.id;
        repair_event st ~at:st.now ~op:"reconstruct"
          ~blocks:((bytes + cfg.Repair.block_bytes - 1) / cfg.Repair.block_bytes)
          ~cost:model.Disk_model.remap_penalty_ms;
        spend_busy ~degraded:true model.Disk_model.remap_penalty_ms
      end);
  (* Transient media errors: re-service (no seek — the head is already
     there) after a bounded exponential backoff per retry.  Under a
     deadline, a retry storm that has already blown it is abandoned and
     the request fails over to the mirror (when one is healthy). *)
  let extra = ref 0.0 in
  (match fctx with
  | None -> ()
  | Some { inj; retry } ->
      let retries =
        Injector.media_retries inj ~disk:st.id ~max_retries:(retry.Policy.max_attempts - 1)
      in
      if retries > 0 then begin
        let reread = Disk_model.service_ms ~seek_distance:0 model ~rpm ~bytes in
        (try
        for attempt = 1 to retries do
          (match rctx with
          | Some ({ deadline_ms = Some d; _ } as rx) when st.now -. arrival > d -> (
              match failover_read model rx st ~bytes with
              | Some ms ->
                  extra := ms;
                  raise_notrace Exit
              | None -> ())
          | _ -> ());
          let backoff = Policy.backoff_ms retry ~attempt in
          st.m_retries <- st.m_retries + 1;
          st.degraded <- st.degraded +. backoff +. reread;
          fault_event st ~at:st.now ~kind:"media-retry" ~cost:(backoff +. reread);
          (* The platters keep spinning while the controller backs off:
             idle power at the current speed. *)
          let e = energy_j_of ~watts:(Disk_model.idle_power_w model ~rpm:st.rpm) ~ms:backoff in
          st.idle <- st.idle +. backoff;
          st.energy <- st.energy +. e;
          record_span st ~start:st.now ~stop:(st.now +. backoff) ~charge:backoff ~energy:e
            (Timeline.Idle st.rpm);
          st.now <- st.now +. backoff;
          let ms = reread in
          let e = energy_j_of ~watts:(Disk_model.active_power_w model ~rpm) ~ms in
          st.busy <- st.busy +. ms;
          st.energy <- st.energy +. e;
          record_span st ~start:st.now ~stop:(st.now +. ms) ~charge:ms ~energy:e Timeline.Busy;
          st.now <- st.now +. ms
        done
        with Exit -> ())
      end);
  (* [extra] is 0.0 on every non-failover path, so [x +. 0.0] keeps the
     response and completion stamps bit-identical to the clean engine. *)
  let response = st.now -. arrival +. !extra in
  st.reqs <- st.reqs + 1;
  st.resp_total <- st.resp_total +. response;
  if response > st.resp_max then st.resp_max <- response;
  if Sink.enabled st.sink then
    Sink.emit st.sink
      (Obs_event.Service
         {
           disk = st.id;
           proc;
           arrival_ms = arrival;
           start_ms = start;
           stop_ms = st.now +. !extra;
           lba;
           bytes;
         });
  (match rctx with
  | Some { deadline_ms = Some d; _ } when response > d ->
      if Sink.enabled st.sink then
        Sink.emit st.sink
          (Obs_event.Deadline
             {
               disk = st.id;
               proc;
               at_ms = st.now +. !extra;
               response_ms = response;
               deadline_ms = d;
             })
  | _ -> ());
  response

(* DRPM window bookkeeping: after [window_size] requests compare the
   window's average response with its full-speed service average and
   shift up one level on degradation beyond the tolerance. *)
let drpm_window model (cfg : Policy.drpm_config) fctx st ~response ~nominal =
  st.win_count <- st.win_count + 1;
  st.win_resp <- st.win_resp +. response;
  st.win_nominal <- st.win_nominal +. nominal;
  if st.win_count >= cfg.Policy.window_size then begin
    let avg = st.win_resp /. float_of_int st.win_count in
    let nominal = st.win_nominal /. float_of_int st.win_count in
    (* On degradation beyond the tolerance the controller orders the
       disk back to full speed (Gurumurthi et al.) — unless a stuck-RPM
       fault refuses the command. *)
    if avg > cfg.Policy.tolerance *. nominal && st.rpm < model.Disk_model.rpm_max then begin
      decision st "drpm:window-upshift";
      if try_drpm_shift model fctx st ~rpm_to:model.Disk_model.rpm_max then
        st.ups <- st.ups + 1
    end;
    st.win_count <- 0;
    st.win_resp <- 0.0;
    st.win_nominal <- 0.0
  end

(* Serve request [r] issued at [issue] (closed-loop actual time).
   [hinted] says whether the simulation carries a compiler hint stream:
   a proactive policy with hints executes the directives, a proactive
   policy without falls back to the omniscient gap planner.  Returns the
   response time. *)
let rec handle_request model policy ctrl fctx rctx st (r : Request.t) ~issue ~hinted ~recon =
  match policy with
  | Policy.No_pm ->
      if issue > st.now then gap_no_pm model st ~until:issue;
      serve model fctx rctx st ~proc:r.Request.proc ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max ~recon
  | Policy.Tpm cfg when cfg.Policy.proactive ->
      if hinted then begin
        let hs = take_hints st ~upto:r.Request.arrival_ms in
        if issue > st.now then
          gap_tpm_hinted model fctx st ~until:issue ~terminal:false
            ~spin_down:(hint_spin_down hs) ~lead:(hint_lead hs)
      end
      else if issue > st.now then
        gap_tpm_proactive model cfg fctx st ~until:issue ~terminal:false;
      serve model fctx rctx st ~proc:r.Request.proc ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max ~recon
  | Policy.Tpm cfg ->
      let spun_down = if issue > st.now then gap_tpm model cfg st ~until:issue else false in
      if spun_down then begin
        (* Reactive spin-up: starts at the arrival (or at the end of an
           in-flight spin-down), delays the service. *)
        st.now <- Float.max st.now issue;
        spin_up model fctx st
      end;
      serve model fctx rctx st ~proc:r.Request.proc ~arrival:issue ~lba:r.lba ~bytes:r.size
        ~rpm:model.Disk_model.rpm_max ~recon
  | Policy.Adaptive _ ->
      let ctrl = match ctrl with Some c -> c | None -> assert false in
      let spun_down =
        if issue > st.now then gap_adaptive model ctrl fctx st ~until:issue ~terminal:false
        else false
      in
      if spun_down then begin
        st.now <- Float.max st.now issue;
        spin_up model fctx st
      end;
      (* Feed the controller the arrival it just witnessed; the decision
         it derives (at an epoch boundary) governs *future* gaps. *)
      Online.observe ctrl ~disk:st.id ~now_ms:issue;
      let response =
        serve model fctx rctx st ~proc:r.Request.proc ~arrival:issue ~lba:r.lba ~bytes:r.size
          ~rpm:st.rpm ~recon
      in
      (* After a dip the request was served slow; recover one level per
         request with the transition overlapping servicing, as in the
         reactive DRPM path. *)
      (if st.rpm < model.Disk_model.rpm_max then begin
         if shift_refused fctx st then fault_event st ~at:st.now ~kind:"stuck-rpm" ~cost:0.0
         else begin
           let rpm_to = st.rpm + model.Disk_model.rpm_step in
           let e = Disk_model.drpm_transition_j model ~rpm_from:st.rpm ~rpm_to in
           st.energy <- st.energy +. e;
           record_span st ~start:st.now ~stop:st.now ~charge:0.0 ~energy:e
             Timeline.Transition;
           st.rpm <- rpm_to;
           st.shifts <- st.shifts + 1;
           if rpm_to = model.Disk_model.rpm_max then st.ups <- st.ups + 1
         end
       end);
      response
  | Policy.Drpm cfg when cfg.Policy.proactive && hinted && serving_degraded fctx st ->
      (* The compiler's directive assumed a disk that obeys speed
         commands; a stuck-RPM window invalidates it.  Degrade to the
         reactive twin for this request: idle or serve slow, recover
         once the window expires — never stall. *)
      handle_request model (Policy.reactive_fallback policy) ctrl fctx rctx st r ~issue
        ~hinted:false ~recon
  | Policy.Drpm cfg ->
      (if cfg.Policy.proactive && hinted then begin
         let hs = take_hints st ~upto:r.Request.arrival_ms in
         if issue > st.now then begin
           match hint_target_rpm hs with
           | Some rpm ->
               gap_drpm_proactive ~target_rpm:rpm model cfg fctx st ~until:issue
                 ~terminal:false
           | None ->
               (* No directive: the compiler planned no dip for this gap. *)
               spend_idle model st (issue -. st.now)
         end
       end
       else if issue > st.now then begin
         if cfg.Policy.proactive then
           gap_drpm_proactive model cfg fctx st ~until:issue ~terminal:false
         else gap_drpm model cfg fctx st ~until:issue
       end);
      let seek_distance = if st.last_end < 0 then max_int else r.lba - st.last_end in
      let nominal =
        Disk_model.service_ms ~seek_distance model ~rpm:model.Disk_model.rpm_max
          ~bytes:r.size
      in
      let response =
        serve model fctx rctx st ~proc:r.Request.proc ~arrival:issue ~lba:r.lba ~bytes:r.size
          ~rpm:st.rpm ~recon
      in
      (* Ramp back toward full speed one level per serviced request: RPM
         transitions overlap servicing (the low-overhead dynamic-RPM
         design of Gurumurthi et al.), so only the energy is charged —
         unless a stuck-RPM fault refuses the shift. *)
      (if st.rpm < model.Disk_model.rpm_max then begin
         if shift_refused fctx st then fault_event st ~at:st.now ~kind:"stuck-rpm" ~cost:0.0
         else begin
           let rpm_to = st.rpm + model.Disk_model.rpm_step in
           let e = Disk_model.drpm_transition_j model ~rpm_from:st.rpm ~rpm_to in
           st.energy <- st.energy +. e;
           record_span st ~start:st.now ~stop:st.now ~charge:0.0 ~energy:e
             Timeline.Transition;
           st.rpm <- rpm_to;
           st.shifts <- st.shifts + 1;
           if rpm_to = model.Disk_model.rpm_max then st.ups <- st.ups + 1
         end
       end);
      drpm_window model cfg fctx st ~response ~nominal;
      response

(* Trailing window: account the timeline from the last completion to the
   global makespan, with no arrival to terminate the gap. *)
let handle_trailing model policy ctrl fctx st ~until ~hinted =
  if until > st.now then begin
    match policy with
    | Policy.No_pm -> gap_no_pm model st ~until
    | Policy.Adaptive _ ->
        let ctrl = match ctrl with Some c -> c | None -> assert false in
        ignore (gap_adaptive model ctrl fctx st ~until ~terminal:true)
    | Policy.Tpm cfg when cfg.Policy.proactive ->
        if hinted then
          let hs = take_hints st ~upto:infinity in
          gap_tpm_hinted model fctx st ~until ~terminal:true
            ~spin_down:(hint_spin_down hs) ~lead:None
        else gap_tpm_proactive model cfg fctx st ~until ~terminal:true
    | Policy.Tpm cfg -> ignore (gap_tpm model cfg st ~until)
    | Policy.Drpm cfg when cfg.Policy.proactive ->
        if hinted then begin
          let hs = take_hints st ~upto:infinity in
          match hint_target_rpm hs with
          | Some rpm ->
              gap_drpm_proactive ~target_rpm:rpm model cfg fctx st ~until ~terminal:true
          | None -> spend_idle model st (until -. st.now)
        end
        else gap_drpm_proactive model cfg fctx st ~until ~terminal:true
    | Policy.Drpm cfg -> gap_drpm model cfg fctx st ~until
  end;
  (* A TPM spin-down may overshoot [until]; clamp for reporting. *)
  if st.now > until then st.now <- until

let stats_of_state rctx st ~last_completion =
  let c =
    match rctx with
    | Some rx -> Repair.counters rx.rc st.id
    | None -> Repair.zero_counters
  in
  {
    disk = st.id;
    requests = st.reqs;
    energy_j = st.energy;
    busy_ms = st.busy;
    idle_ms = st.idle;
    standby_ms = st.standby;
    transition_ms = st.transition;
    spin_downs = st.downs;
    spin_ups = st.ups;
    speed_changes = st.shifts;
    spin_up_retries = st.su_retries;
    media_retries = st.m_retries;
    latency_spikes = st.spikes;
    degraded_ms = st.degraded;
    remaps = c.Repair.remaps;
    remap_penalty_hits = c.Repair.penalty_hits;
    scrub_chunks = c.Repair.scrub_chunks;
    scrub_found = c.Repair.scrub_found;
    reconstructions = c.Repair.reconstructions;
    rebuild_chunks = c.Repair.rebuild_chunks;
    failovers = c.Repair.failovers;
    disk_failures = c.Repair.failures;
    rebuilds_completed = c.Repair.rebuilds;
    response_ms_total = st.resp_total;
    response_ms_max = st.resp_max;
    last_completion_ms = last_completion;
  }

let wear_fraction model stats =
  float_of_int stats.spin_downs /. float_of_int model.Disk_model.rated_start_stop_cycles

(* --- sharding: per-segment connected components --- *)

(* A shard group is a set of processors plus the set of disks they can
   possibly touch this segment (their request targets, closed under
   mirror pairing when the repair domain is armed, since failover and
   reconstruction route a request to its mirror).  Two groups share no
   mutable state — disjoint processors, clocks, disk states, injector
   and repair slots — so groups run on separate domains and the result
   is the serial result bit for bit.  Both lists ascend so a group's
   internal scan order matches the serial engine's index-order scans. *)
type shard_group = { g_procs : int list; g_disks : int list }

let shard_groups ~n_proc ~disks ~mirror queues_seg =
  let n = n_proc + disks in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra < rb then parent.(rb) <- ra else if rb < ra then parent.(ra) <- rb
  in
  Array.iteri
    (fun p q -> List.iter (fun (r : Request.t) -> union p (n_proc + r.Request.disk)) q)
    queues_seg;
  (match mirror with
  | Some mirror_of ->
      for d = 0 to disks - 1 do
        match mirror_of d with Some m when m <> d -> union (n_proc + d) (n_proc + m) | _ -> ()
      done
  | None -> ());
  let groups : (int, int list * int list) Hashtbl.t = Hashtbl.create 16 in
  (* Descending passes cons up ascending member lists; processors with
     no requests this segment never win the issue scan and are left out
     of every group, as are the disk-only components they would leave
     behind. *)
  for p = n_proc - 1 downto 0 do
    if queues_seg.(p) <> [] then begin
      let r = find p in
      let ps, ds = try Hashtbl.find groups r with Not_found -> ([], []) in
      Hashtbl.replace groups r (p :: ps, ds)
    end
  done;
  for d = disks - 1 downto 0 do
    let r = find (n_proc + d) in
    match Hashtbl.find_opt groups r with
    | Some (ps, ds) -> Hashtbl.replace groups r (ps, d :: ds)
    | None -> ()
  done;
  Hashtbl.fold (fun root g acc -> (root, g) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (_, (ps, ds)) -> { g_procs = ps; g_disks = ds })

(* Closed-loop simulation: each processor replays its request stream in
   order, issuing a request [think_ms] after its previous completion.
   Segment barriers synchronize all processors.  Disks are FIFO in issue
   order; their power trajectory over each inter-arrival gap is decided
   by the policy. *)
let simulate ?(model = Disk_model.ultrastar_36z15) ?(record_timeline = false)
    ?(obs = Sink.null) ?(hints = []) ?faults ?(retry = Policy.default_retry) ?repair
    ?deadline_ms ?(shards = 1) ~disks policy reqs =
  Dp_obs.Prof.span "disksim.simulate" @@ fun () ->
  if disks < 1 then invalid_arg "Engine.simulate: disks must be >= 1";
  if shards < 1 then invalid_arg "Engine.simulate: shards must be >= 1";
  List.iter
    (fun (r : Request.t) ->
      if r.disk < 0 || r.disk >= disks then
        invalid_arg (Printf.sprintf "Engine.simulate: request on disk %d of %d" r.disk disks))
    reqs;
  List.iter
    (fun (h : Hint.t) ->
      if h.Hint.disk < 0 || h.Hint.disk >= disks then
        invalid_arg
          (Printf.sprintf "Engine.simulate: hint on disk %d of %d" h.Hint.disk disks))
    hints;
  let hinted = hints <> [] in
  let fctx =
    match faults with
    | None -> None
    | Some cfg -> Some { inj = Injector.make cfg ~disks; retry }
  in
  (* The repair domain is armed by an explicit [?repair] config, by a
     fault spec whose classes include media decay, or by a deadline —
     with [Repair.default] (scrub off) in the implicit cases, so a
     rate-0 decay run stays byte-identical to a clean one. *)
  let decay_armed =
    match faults with
    | Some f -> List.mem Fault_model.Media_decay f.Fault_model.classes
    | None -> false
  in
  let rctx =
    match repair with
    | Some cfg -> Some { rc = Repair.make cfg ~disks; deadline_ms; peers = [||] }
    | None when decay_armed || deadline_ms <> None ->
        Some { rc = Repair.make Repair.default ~disks; deadline_ms; peers = [||] }
    | None -> None
  in
  let ctrl =
    match policy with
    | Policy.Adaptive cfg ->
        Some
          (Online.make cfg
             ~hardware:
               {
                 Online.breakeven_ms = ms_of_s model.Disk_model.tpm_breakeven_s;
                 spin_down_ms = ms_of_s model.Disk_model.spin_down_s;
                 spin_up_ms = ms_of_s model.Disk_model.spin_up_s;
                 rpm_max = model.Disk_model.rpm_max;
                 rpm_min = model.Disk_model.rpm_min;
                 rpm_step = model.Disk_model.rpm_step;
                 level_ms = ms_of_s (Disk_model.drpm_level_transition_s model);
               }
             ~disks)
    | _ -> None
  in
  let reqs = List.sort Request.compare_arrival reqs in
  let n_proc =
    1 + List.fold_left (fun acc (r : Request.t) -> max acc r.proc) (-1) reqs
  in
  let n_seg = 1 + List.fold_left (fun acc (r : Request.t) -> max acc r.seg) 0 reqs in
  (* Per (segment, proc) queues, preserving per-proc issue order. *)
  let queues : Request.t list array array =
    Array.init n_seg (fun _ -> Array.make (max n_proc 1) [])
  in
  List.iter (fun (r : Request.t) -> queues.(r.seg).(r.proc) <- r :: queues.(r.seg).(r.proc)) reqs;
  Array.iter
    (fun per_proc -> Array.iteri (fun p q -> per_proc.(p) <- List.rev q) per_proc)
    queues;
  let states = Array.init disks (make_state ~record:record_timeline ~sink:obs model) in
  (match rctx with Some rx -> rx.peers <- states | None -> ());
  List.iter
    (fun (h : Hint.t) ->
      let st = states.(h.Hint.disk) in
      st.hints <- h :: st.hints)
    (List.rev (List.stable_sort Hint.compare_at hints));
  let last_completion = Array.make disks 0.0 in
  let clocks = Array.make (max n_proc 1) 0.0 in
  let sink_on = Sink.enabled obs in
  (* One group's issue loop over a segment.  The group touches only its
     own slots of [pending]/[clocks]/[last_completion] and its own disk
     states, so concurrent groups never share a mutable cell.  With
     [batch] set, the events of each issue step are buffered and tagged
     with the step's (issue time, processor): the serial engine executes
     steps in exactly (issue time, processor) order — per processor the
     issue times are non-decreasing, and among processors tied at the
     same instant the scan's strict [<] picks the lowest index first —
     so a stable sort of all groups' batches on that key replays the
     serial emission order bit for bit. *)
  let run_group ~batch pending { g_procs; g_disks } =
    let batches = ref [] in
    let cur = ref [] in
    if batch then begin
      let buffer = Sink.stream (fun e -> cur := e :: !cur) in
      List.iter (fun d -> states.(d).sink <- buffer) g_disks
    end;
    let next_issue p =
      match pending.(p) with
      | [] -> infinity
      | r :: _ -> clocks.(p) +. r.Request.think_ms
    in
    let rec step () =
      (* Pick the processor with the earliest next issue time. *)
      let best = ref (-1) and best_t = ref infinity in
      List.iter
        (fun p ->
          let t = next_issue p in
          if t < !best_t then begin
            best := p;
            best_t := t
          end)
        g_procs;
      if !best >= 0 then begin
        let p = !best in
        match pending.(p) with
        | [] -> assert false
        | r :: rest ->
            pending.(p) <- rest;
            (* Degraded mode: rebuild streams advance on failed slots up
               to the issue instant, and the request is routed to the
               mirror while its home slot is down.  Only this group's
               slots: a foreign failed slot is advanced by its own
               group's clock, and the rebuild stream's whole-slice
               greedy advance reaches the same state through any
               refinement of intermediate instants. *)
            (match rctx with
            | Some rx ->
                List.iter
                  (fun d ->
                    let st = states.(d) in
                    if Repair.is_failed rx.rc st.id then
                      advance_rebuild model rx st ~until:!best_t)
                  g_disks
            | None -> ());
            let target =
              match rctx with
              | Some rx when Repair.is_failed rx.rc r.Request.disk -> (
                  match Repair.mirror_of rx.rc r.Request.disk with
                  | Some m when not (Repair.is_failed rx.rc m) -> m
                  | _ -> r.Request.disk)
              | _ -> r.Request.disk
            in
            let st = states.(target) in
            (* Scrub runs first, out of the same idle window the policy
               is about to manage (and outside [handle_request], so the
               stuck-RPM fallback recursion cannot double-spend the
               budget); the policy then sees the shrunken remainder. *)
            (match rctx with
            | Some rx when !best_t > st.now -> scrub_gap model rx st ~until:!best_t
            | _ -> ());
            let response =
              handle_request model policy ctrl fctx rctx st r ~issue:!best_t ~hinted
                ~recon:(target <> r.Request.disk)
            in
            ignore response;
            clocks.(p) <- !best_t +. response;
            last_completion.(target) <- st.now;
            (match rctx with
            | Some rx when Repair.should_fail rx.rc ~disk:target ->
                fail_disk model rx states.(target)
            | _ -> ());
            if batch then begin
              batches := (!best_t, p, List.rev !cur) :: !batches;
              cur := []
            end;
            step ()
      end
    in
    step ();
    if batch then List.iter (fun d -> states.(d).sink <- obs) g_disks;
    List.rev !batches
  in
  let all_group =
    { g_procs = List.init n_proc Fun.id; g_disks = List.init disks Fun.id }
  in
  let mirror_edges =
    match rctx with Some rx -> Some (fun d -> Repair.mirror_of rx.rc d) | None -> None
  in
  for seg = 0 to n_seg - 1 do
    let pending = Array.copy queues.(seg) in
    let groups =
      (* Repair-armed runs with a live sink stay one group: a failed
         slot's rebuild slices are emitted from whichever step's clock
         first covers them, an attribution the batch key cannot carry
         across groups.  Without a sink the rebuild invariance above
         makes the split safe, and without repair there is nothing to
         attribute. *)
      if shards <= 1 || (sink_on && Option.is_some rctx) then [ all_group ]
      else shard_groups ~n_proc ~disks ~mirror:mirror_edges pending
    in
    (match groups with
    | [] -> ()
    | [ g ] -> ignore (run_group ~batch:false pending g)
    | gs ->
        (* Never oversubscribe the machine: extra domains on a saturated
           core buy no parallelism but still pay the runtime's
           stop-the-world coordination on every minor collection, a cost
           that grows with the trace.  Clamped to one domain the pool
           runs the groups sequentially in input order — same results,
           and each group still scans only its own processors. *)
        let jobs =
          min (min shards (List.length gs)) (Domain.recommended_domain_count ())
        in
        let per_group = Domain_pool.map ~jobs (run_group ~batch:sink_on pending) gs in
        if sink_on then
          List.concat per_group
          |> List.stable_sort (fun (t1, p1, _) (t2, p2, _) ->
                 match Float.compare t1 t2 with 0 -> Int.compare p1 p2 | c -> c)
          |> List.iter (fun (_, _, es) -> List.iter (Sink.emit obs) es));
    (* Fork-join barrier: the epoch boundary every shard joins. *)
    let latest = Array.fold_left max 0.0 clocks in
    Array.fill clocks 0 (Array.length clocks) latest
  done;
  let makespan = Array.fold_left max 0.0 last_completion in
  Array.iter
    (fun st ->
      (match rctx with
      | Some rx ->
          if Repair.is_failed rx.rc st.id then begin
            (* A slot still failed at the end of the run rebuilds as far
               as the makespan allows, then idles out the remainder at
               full power (no PM on a rebuilding spare). *)
            advance_rebuild model rx st ~until:makespan;
            if Repair.is_failed rx.rc st.id then gap_no_pm model st ~until:makespan
          end
          else if makespan > st.now then scrub_gap model rx st ~until:makespan
      | None -> ());
      handle_trailing model policy ctrl fctx st ~until:makespan ~hinted)
    states;
  let per_disk =
    Array.mapi
      (fun d st -> stats_of_state rctx st ~last_completion:last_completion.(d))
      states
  in
  {
    policy = Policy.name policy;
    per_disk;
    energy_j = Array.fold_left (fun acc (s : disk_stats) -> acc +. s.energy_j) 0.0 per_disk;
    io_time_ms =
      Array.fold_left (fun acc (s : disk_stats) -> acc +. s.response_ms_total) 0.0 per_disk;
    makespan_ms = makespan;
    timeline =
      (if record_timeline then Some (Array.map (fun st -> List.rev st.segs) states)
       else None);
  }

let pp_disk_stats ppf s =
  Format.fprintf ppf
    "disk %d: %d reqs, %.1f J, busy %.0f ms, idle %.0f ms, standby %.0f ms, trans %.0f ms, \
     %d downs, %d ups, %d shifts, resp avg %.2f ms max %.2f ms"
    s.disk s.requests s.energy_j s.busy_ms s.idle_ms s.standby_ms s.transition_ms
    s.spin_downs s.spin_ups s.speed_changes
    (if s.requests = 0 then 0.0 else s.response_ms_total /. float_of_int s.requests)
    s.response_ms_max;
  if s.spin_up_retries > 0 || s.media_retries > 0 || s.latency_spikes > 0 || s.degraded_ms > 0.0
  then
    Format.fprintf ppf ", %d su-retries, %d media-retries, %d spikes, degraded %.0f ms"
      s.spin_up_retries s.media_retries s.latency_spikes s.degraded_ms;
  (* Repair-domain suffix only when the run actually exercised it, so
     clean output stays byte-identical. *)
  if
    s.remaps > 0 || s.remap_penalty_hits > 0 || s.scrub_chunks > 0 || s.reconstructions > 0
    || s.failovers > 0 || s.disk_failures > 0
  then
    Format.fprintf ppf
      ", %d remaps, %d remap hits, scrub %d/%d, %d recon, %d failovers, %d failures (%d \
       rebuilt)"
      s.remaps s.remap_penalty_hits s.scrub_found s.scrub_chunks s.reconstructions
      s.failovers s.disk_failures s.rebuilds_completed

(* The one-line wear/retry summary both CLIs print after a simulated
   run (formerly duplicated between dpcc and dpsim). *)
let pp_reliability ?(model = Disk_model.ultrastar_36z15) ppf r =
  let wear, su, media, spikes, degraded =
    Array.fold_left
      (fun (w, s, m, l, d) ds ->
        ( Float.max w (wear_fraction model ds),
          s + ds.spin_up_retries,
          m + ds.media_retries,
          l + ds.latency_spikes,
          d +. ds.degraded_ms ))
      (0.0, 0, 0, 0, 0.0) r.per_disk
  in
  Format.fprintf ppf
    "reliability: wear %.4f%% of start-stop budget (worst disk), %d spin-up retries, %d \
     media retries, %d latency spikes, degraded %.1f ms"
    (100.0 *. wear) su media spikes degraded;
  let remaps, hits, found, chunks, recon, fo, fails, rebuilt =
    Array.fold_left
      (fun (a, b, c, d, e, f, g, h) ds ->
        ( a + ds.remaps,
          b + ds.remap_penalty_hits,
          c + ds.scrub_found,
          d + ds.scrub_chunks,
          e + ds.reconstructions,
          f + ds.failovers,
          g + ds.disk_failures,
          h + ds.rebuilds_completed ))
      (0, 0, 0, 0, 0, 0, 0, 0) r.per_disk
  in
  if remaps > 0 || hits > 0 || chunks > 0 || recon > 0 || fo > 0 || fails > 0 then
    Format.fprintf ppf
      "@\nrepair: %d remaps, %d remap hits, scrub found %d in %d chunks, %d \
       reconstructions, %d failovers, %d disk failures (%d rebuilt)"
      remaps hits found chunks recon fo fails rebuilt

let pp_result ppf r =
  Format.fprintf ppf "@[<v>policy %s: energy %.1f J, io time %.1f ms, makespan %.1f ms@,%a@]"
    r.policy r.energy_j r.io_time_ms r.makespan_ms
    (Format.pp_print_list pp_disk_stats)
    (Array.to_list r.per_disk)

(* --- conservation accessors ---

   The identities every run must satisfy, factored out of the tests so
   external checkers (the chaos oracle) probe the same definitions the
   engine promises instead of re-deriving their own. *)

let accounted_ms s = s.busy_ms +. s.idle_ms +. s.standby_ms +. s.transition_ms

let check_conservation ?(eps = 1e-6) r =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let close a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs b) in
  (* The per-disk energies fold to the array total. *)
  let folded = Array.fold_left (fun acc (s : disk_stats) -> acc +. s.energy_j) 0.0 r.per_disk in
  if not (close folded r.energy_j) then
    err "per-disk energies sum to %.9f J, result says %.9f J" folded r.energy_j;
  (match r.timeline with
  | None -> ()
  | Some t ->
      Array.iter
        (fun (s : disk_stats) ->
          let d = s.disk in
          (* Every accounted joule lands in exactly one segment. *)
          let seg_j = Timeline.total_energy_j t ~disk:d in
          if not (close seg_j s.energy_j) then
            err "disk %d: timeline energy %.9f J, stats say %.9f J" d seg_j s.energy_j;
          (* Segment spans cover the accounted state time exactly. *)
          let span =
            List.fold_left (fun acc (g : Timeline.segment) -> acc +. (g.stop_ms -. g.start_ms))
              0.0 t.(d)
          in
          if not (close span (accounted_ms s)) then
            err "disk %d: timeline spans %.6f ms, state times sum to %.6f ms" d span
              (accounted_ms s);
          (* Chronological, gap-free, non-negative segments. *)
          ignore
            (List.fold_left
               (fun prev (g : Timeline.segment) ->
                 if g.stop_ms -. g.start_ms < -.eps then
                   err "disk %d: segment [%.6f, %.6f] runs backwards" d g.start_ms g.stop_ms;
                 (match prev with
                 | Some stop when Float.abs (g.start_ms -. stop) > eps ->
                     err "disk %d: segment gap at %.6f ms (previous stopped %.6f)" d
                       g.start_ms stop
                 | _ -> ());
                 Some g.stop_ms)
               None t.(d)))
        r.per_disk);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
