type t = {
  name : string;
  capacity_gb : float;
  cache_mb : int;
  rpm_max : int;
  rpm_min : int;
  rpm_step : int;
  seek_ms : float;
  rotation_ms : float;
  transfer_mb_s : float;
  power_active_w : float;
  power_idle_w : float;
  power_standby_w : float;
  spin_down_j : float;
  spin_down_s : float;
  spin_up_j : float;
  spin_up_s : float;
  tpm_breakeven_s : float;
  rated_start_stop_cycles : int;
  spare_blocks : int;
  remap_penalty_ms : float;
}

let ultrastar_36z15 =
  {
    name = "IBM Ultrastar 36Z15";
    capacity_gb = 36.7;
    cache_mb = 4;
    rpm_max = 15_000;
    rpm_min = 3_000;
    rpm_step = 3_000;
    seek_ms = 3.4;
    rotation_ms = 2.0;
    transfer_mb_s = 55.0;
    power_active_w = 13.5;
    power_idle_w = 10.2;
    power_standby_w = 2.5;
    spin_down_j = 13.0;
    spin_down_s = 1.5;
    spin_up_j = 135.0;
    spin_up_s = 10.9;
    tpm_breakeven_s = 15.2;
    rated_start_stop_cycles = 50_000;
    (* Spare-pool remapping (arXiv 1908.01167): enterprise drives
       reserve a spare area per zone; the detour to it costs about one
       average seek plus one rotational latency on every access to a
       remapped block. *)
    spare_blocks = 256;
    remap_penalty_ms = 5.4;
  }

let rpm_levels t =
  let rec up r acc = if r > t.rpm_max then List.rev acc else up (r + t.rpm_step) (r :: acc) in
  up t.rpm_min []

let level_count t = List.length (rpm_levels t)

let rpm_of_level t level =
  let levels = rpm_levels t in
  match List.nth_opt levels level with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf "Disk_model.rpm_of_level: level %d outside [0, %d)" level
           (List.length levels))

let top_level t = level_count t - 1

let check_rpm t rpm =
  if rpm < t.rpm_min || rpm > t.rpm_max then
    invalid_arg (Printf.sprintf "Disk_model: rpm %d outside [%d, %d]" rpm t.rpm_min t.rpm_max)

let short_seek_bytes = 32 * 1024 * 1024

let seek_ms_of_distance t distance =
  let d = abs distance in
  if d = 0 then 0.0
  else if d <= short_seek_bytes then 0.4 *. t.seek_ms
  else t.seek_ms

let service_ms ?seek_distance t ~rpm ~bytes =
  check_rpm t rpm;
  let slowdown = float_of_int t.rpm_max /. float_of_int rpm in
  let seek =
    match seek_distance with
    | None -> t.seek_ms
    | Some d -> seek_ms_of_distance t d
  in
  seek
  +. (t.rotation_ms *. slowdown)
  +. (float_of_int bytes /. (t.transfer_mb_s *. 1024.0 *. 1024.0) *. 1000.0 *. slowdown)

(* First touch of a grown bad sector: seek to the spare area, wait the
   rotation, write the relocated block, seek back. *)
let remap_ms t ~rpm ~block_bytes =
  t.seek_ms +. service_ms ~seek_distance:max_int t ~rpm ~bytes:block_bytes

let quad_frac t rpm =
  let f = float_of_int rpm /. float_of_int t.rpm_max in
  f *. f

let idle_power_w t ~rpm =
  check_rpm t rpm;
  t.power_standby_w +. ((t.power_idle_w -. t.power_standby_w) *. quad_frac t rpm)

let active_power_w t ~rpm =
  check_rpm t rpm;
  idle_power_w t ~rpm +. ((t.power_active_w -. t.power_idle_w) *. quad_frac t rpm)

let transition_s t ~rpm_from ~rpm_to =
  if rpm_from = rpm_to then 0.0
  else begin
    let delta = float_of_int (abs (rpm_to - rpm_from)) /. float_of_int t.rpm_max in
    if rpm_to > rpm_from then t.spin_up_s *. delta else t.spin_down_s *. delta
  end

let transition_j t ~rpm_from ~rpm_to =
  if rpm_from = rpm_to then 0.0
  else begin
    let delta = float_of_int (abs (rpm_to - rpm_from)) /. float_of_int t.rpm_max in
    if rpm_to > rpm_from then t.spin_up_j *. delta else t.spin_down_j *. delta
  end

let drpm_level_transition_s _t = 0.4

let drpm_transition_j t ~rpm_from ~rpm_to =
  let levels = abs (rpm_to - rpm_from) / t.rpm_step in
  let faster = max rpm_from rpm_to in
  float_of_int levels *. drpm_level_transition_s t *. active_power_w t ~rpm:faster

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %.1f GB, %d MB cache, %d RPM (DRPM %d..%d step %d)@,\
     seek %.1f ms, rotation %.1f ms, transfer %.1f MB/s@,\
     power: active %.1f W, idle %.1f W, standby %.1f W@,\
     spin-down %.1f J / %.1f s, spin-up %.1f J / %.1f s, break-even %.1f s@]"
    t.name t.capacity_gb t.cache_mb t.rpm_max t.rpm_min t.rpm_max t.rpm_step t.seek_ms
    t.rotation_ms t.transfer_mb_s t.power_active_w t.power_idle_w t.power_standby_w
    t.spin_down_j t.spin_down_s t.spin_up_j t.spin_up_s t.tpm_breakeven_s
