(** Disk power-management policies (Section 4): none, traditional
    spin-down (TPM), and dynamic speed setting (DRPM). *)

type tpm_config = {
  idle_threshold_s : float;
      (** continuous idleness before spinning down; defaults to the
          disk's break-even time (Table 1: 15.2 s) *)
  proactive : bool;
      (** compiler-directed mode (Son et al., IPDPS'05 — the machinery
          the paper's restructured versions run on): the compiler knows
          the disk access schedule, so it spins a disk down at the start
          of an idle period it predicts to be long enough, and issues the
          spin-up early so the disk is back at full speed exactly when
          the next request arrives — no reactive spin-up stall. *)
}

type drpm_config = {
  window_size : int;  (** requests per response-time window (Table 1: 100) *)
  downshift_idle_ms : float;
      (** continuous idleness consumed per one-level speed decrease *)
  tolerance : float;
      (** upshift one level when a window's average response time exceeds
          [tolerance] x its full-speed service average *)
  proactive : bool;
      (** compiler-directed speed setting: with the schedule known, a
          gap's speed trajectory is planned so the disk drops straight to
          the deepest level whose round trip fits and is back at full
          speed exactly when the next request arrives — every request is
          then served at full speed. *)
  min_rpm : int option;
      (** floor below which the controller never drops; [Some 9000] with
          the Ultrastar's levels gives the two-speed architecture of
          Carrera et al. (ICS'03) that the paper cites as a DRPM
          alternative.  [None]: the drive's minimum. *)
}

type t =
  | No_pm
  | Tpm of tpm_config
  | Drpm of drpm_config
  | Adaptive of Dp_online.Online.config
      (** epoch-based online adaptation (see {!Dp_online.Online}): the
          engine learns per-disk inter-arrival statistics as the run
          unfolds and picks spin-down thresholds / RPM dips from the
          estimate — no compiler schedule, no hints.  The policy for
          merged multi-tenant streams whose interleaving nobody
          planned. *)

val default_tpm : t
val default_drpm : t
val default_adaptive : t
val tpm : ?idle_threshold_s:float -> ?proactive:bool -> unit -> t
val adaptive : ?config:Dp_online.Online.config -> unit -> t
val drpm :
  ?window_size:int ->
  ?downshift_idle_ms:float ->
  ?tolerance:float ->
  ?proactive:bool ->
  ?min_rpm:int ->
  unit ->
  t
val name : t -> string

val describe : t -> string
(** [name] plus the configuration knobs, e.g.
    ["DRPM proactive (window 100, downshift 1000 ms, tolerance 1.15)"] —
    used to head observability reports. *)

(** {1 Degraded-mode behaviour}

    How a controller responds when the fault injector (see
    {!Dp_faults.Injector}) perturbs an operation: failed operations are
    retried a bounded number of times with bounded exponential backoff,
    and a proactive policy whose directive is invalidated by a fault
    degrades to its reactive twin for the affected gap instead of
    stalling. *)

type retry_config = {
  max_attempts : int;
      (** total tries of a faulted operation (first attempt included);
          spin-ups and media reads are abandoned to the next attempt
          after this many, so a simulation always terminates *)
  backoff_base_ms : float;  (** backoff before the first media retry *)
  backoff_cap_ms : float;  (** bound on the exponential backoff *)
}

val default_retry : retry_config
val retry :
  ?max_attempts:int -> ?backoff_base_ms:float -> ?backoff_cap_ms:float -> unit -> retry_config

val backoff_ms : retry_config -> attempt:int -> float
(** Backoff before retry [attempt] (1-based): [backoff_base_ms]
    doubling per attempt, capped at [backoff_cap_ms]. *)

val reactive_fallback : t -> t
(** The same policy with [proactive] cleared: what a compiler-directed
    controller falls back to for a gap whose directive a fault
    invalidated (idle, or serve slow and recover reactively). *)
