(** Deprecated location: the pool lives in {!Dp_util.Domain_pool} now
    (the engine's shard fan-out needs it below the pipeline layer).
    This alias keeps existing [Dp_pipeline.Domain_pool] callers
    compiling. *)

include module type of Dp_util.Domain_pool
