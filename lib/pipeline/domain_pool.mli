(** A small fixed-size pool of OCaml 5 domains for fanning out
    independent experiment rows.

    Results are returned in input order regardless of which domain ran
    which task, so a parallel map over deterministic functions is itself
    deterministic: [map ~jobs:n f xs = map ~jobs:1 f xs] byte for byte.

    [jobs = 1] (and singleton/empty inputs) run inline on the calling
    domain — no domain is spawned, making the serial path the identity
    baseline the parallel one is diffed against. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on a pool of
    [min jobs (length xs)] domains (the calling domain counts as one)
    and returns the results in input order.

    Tasks are claimed from a shared atomic counter, so an imbalanced
    workload still keeps every domain busy.  If any [f x] raises, the
    first exception (in task order) is re-raised on the calling domain
    after all domains have drained; remaining unclaimed tasks are
    skipped.
    @raise Invalid_argument if [jobs < 1]. *)

val default_jobs : unit -> int
(** A conservative pool size for experiment fan-out:
    [max 1 (recommended_domain_count () - 1)], capped at 8. *)
