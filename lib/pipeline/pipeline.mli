module Ir = Dp_ir.Ir
module App = Dp_workloads.App
module Layout = Dp_layout.Layout
module Striping = Dp_layout.Striping
module Concrete = Dp_dependence.Concrete
module Cluster = Dp_restructure.Cluster
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Oracle = Dp_oracle.Oracle
module Cachefs = Dp_cachefs.Cachefs

(** The one compile→trace→simulate pipeline.

    The paper's workflow is a fixed sequence — parse, dependence
    analysis, disk-reuse restructuring (Fig. 3 / Sec 6.2), trace
    generation, trace-driven simulation.  A {!t} is the shared
    compilation context of one program: each stage is a named, memoized
    step keyed by the knobs that actually change its output (processor
    count, restructuring {!mode}, clustering policy), so the dependence
    graph and the Base trace are computed once and shared across every
    version of the evaluation matrix instead of rebuilt per row.  Every
    stage build runs under a [pipeline.*] {!Dp_obs.Prof} span.

    Stage memo tables are protected by a per-context mutex: a context
    may be shared by several domains ({!Domain_pool}), each looking up
    or building stages concurrently; builds are serialized, everything
    downstream (the simulations — the dominant cost) runs in
    parallel.

    A context may additionally be backed by a persistent {!Cachefs}
    store: the trace and hint stages then consult the store before
    building (keyed by the context {!digest}, so results are shared
    across processes and invocations) and write through after.  The
    store's failure contract keeps the pipeline oblivious — any disk
    problem is just a miss. *)

type t

(** {1 Restructuring modes}

    The three execution-order families of the evaluation matrix.  The
    version rows map onto them as: Base/TPM/DRPM and the Oracle bounds
    replay {!Original}; T-*-s is {!Reuse_single}; T-*-m is
    {!Reuse_multi}. *)

type mode =
  | Original
      (** unmodified code: original order at 1 processor, conventional
          loop parallelization with fork-join nests otherwise *)
  | Reuse_single
      (** the single-CPU disk-reuse algorithm (Fig. 3): the whole
          program at 1 processor; applied to each processor's share of
          the conventionally parallelized code (barriers kept) at
          several *)
  | Reuse_multi
      (** the disk-layout-aware parallelization of Sec 6.2: the data
          space assignment spans all nests, each processor tours its
          disk share, no inter-nest synchronization; needs [procs > 1] *)

val mode_name : mode -> string
val mode_of_name : string -> mode option

(** {1 Building a context} *)

val create :
  ?cache:Cachefs.t ->
  ?origin:string ->
  ?default:Striping.t ->
  ?overrides:(string * Striping.t) list ->
  Ir.program ->
  t
(** A context over an in-memory program; the layout is
    [Layout.make ?default ~overrides program].  [cache] (default none:
    purely in-memory) attaches a persistent store the trace and hint
    stages read through. *)

val of_app : ?cache:Cachefs.t -> App.t -> t
(** A context over a built-in workload (its striping and overrides). *)

val load : ?cache:Cachefs.t -> string -> t
(** [load source] accepts a [.dpl] file path or [app:NAME] for a
    built-in workload — the one loader behind every CLI entry point.
    @raise Failure on an unknown [app:] name; parse errors propagate
    from {!Dp_lang.Resolver.load_file}. *)

val derive : layout:Layout.t -> t -> t
(** A context over the same program with a different disk layout.  The
    dependence graph depends only on the program, so it is shared with
    the parent (already-built graphs are not rebuilt); every
    layout-dependent stage starts cold. *)

val program : t -> Ir.program
val layout : t -> Layout.t
val origin : t -> string
val disks : t -> int

val app : t -> App.t
(** The context as a workload App (paper columns zeroed for loaded
    sources) — the adapter the harness matrix builders consume. *)

val digest : t -> string
(** The content address of the context: a hex digest over the program
    and its layout, serialized structurally.  Two contexts with equal
    digests produce byte-identical traces and hints, so it keys the
    persistent cache across processes. *)

val cache : t -> Cachefs.t option
(** The persistent store backing this context, if any.  [derive]d
    contexts inherit it. *)

(** {1 Stages}

    Each accessor returns the memoized stage result, building it on
    first use.  [cluster] selects the clustering key policy of the
    reuse scheduler (default {!Cluster.First_ref}); it is part of the
    memo key. *)

val graph : t -> Concrete.graph
(** Stage 1: the concrete iteration-instance dependence graph. *)

val streams :
  ?cluster:Cluster.policy -> t -> procs:int -> mode -> Generate.segments array * int option
(** Stage 2: per-processor execution streams for a mode, plus the
    scheduler round count for the restructured modes ([None] for
    {!Original}).
    @raise Invalid_argument for {!Reuse_multi} with [procs = 1] (the
    layout-aware scheme needs several processors) or [procs < 1]. *)

val rounds : ?cluster:Cluster.policy -> t -> procs:int -> mode -> int option
(** The round count of {!streams} alone. *)

val trace : ?cluster:Cluster.policy -> t -> procs:int -> mode -> Request.t list
(** Stage 3: the timed I/O request trace of the mode's streams. *)

val hints :
  ?cluster:Cluster.policy ->
  t ->
  procs:int ->
  space:Oracle.space ->
  mode ->
  Hint.t list
(** Stage 4: the compiler power-hint stream planned on the mode's
    nominal trace, for one transition space. *)

val hints_for :
  ?cluster:Cluster.policy -> t -> procs:int -> policy:Policy.t -> mode -> Hint.t list
(** The hint stream the given policy executes: proactive TPM gets
    {!Oracle.Tpm_space} hints, proactive DRPM {!Oracle.Drpm_space},
    reactive policies get none.  This is the single definition of the
    policy→hint-space mapping (formerly duplicated between [dpcc] and
    the harness runner). *)

val simulate :
  ?cluster:Cluster.policy ->
  ?faults:Dp_faults.Fault_model.t ->
  ?retry:Policy.retry_config ->
  ?obs:Dp_obs.Sink.t ->
  ?record_timeline:bool ->
  ?shards:int ->
  t ->
  procs:int ->
  policy:Policy.t ->
  mode ->
  Engine.result
(** Stage 5: trace-driven simulation of the mode under a policy, with
    the policy's hint stream ({!hints_for}) attached.  Simulation
    results are not memoized — faults, sinks and timelines make runs
    observationally distinct; the expensive upstream stages are.
    [shards] fans the engine's per-segment shard groups across that
    many domains ({!Engine.simulate}); the result stays byte-identical
    to a serial run. *)

(** {1 Stage accounting} *)

type stats = {
  graph_builds : int;
  stream_builds : int;
  trace_builds : int;
  hint_builds : int;
  memo_hits : int;  (** stage lookups answered from the memo tables *)
  disk_hits : int;  (** stage lookups answered from the persistent cache *)
  disk_misses : int;  (** persistent-cache probes that fell through to a build *)
  corrupt_evictions : int;  (** persistent entries quarantined as corrupt *)
}

val stats : t -> stats
(** Cumulative build/hit counters — the observable half of the
    memoization contract ([graph_builds] stays 1 however many matrix
    rows a context serves).  The [disk_*] fields mirror the attached
    store's {!Cachefs.counters} (all zero without one), so profiling
    output can distinguish memory hits from disk hits. *)
