module Ir = Dp_ir.Ir
module App = Dp_workloads.App
module Workloads = Dp_workloads.Workloads
module Resolver = Dp_lang.Resolver
module Layout = Dp_layout.Layout
module Striping = Dp_layout.Striping
module Concrete = Dp_dependence.Concrete
module Cluster = Dp_restructure.Cluster
module Reuse = Dp_restructure.Reuse_scheduler
module Parallelize = Dp_restructure.Parallelize
module Generate = Dp_trace.Generate
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint
module Engine = Dp_disksim.Engine
module Policy = Dp_disksim.Policy
module Oracle = Dp_oracle.Oracle
module Prof = Dp_obs.Prof
module Cachefs = Dp_cachefs.Cachefs
module Bin = Dp_trace.Bin

type mode = Original | Reuse_single | Reuse_multi

let mode_name = function
  | Original -> "original"
  | Reuse_single -> "single"
  | Reuse_multi -> "multi"

let mode_of_name = function
  | "original" -> Some Original
  | "single" -> Some Reuse_single
  | "multi" -> Some Reuse_multi
  | _ -> None

(* Memo keys carry exactly the knobs a stage's output depends on.  The
   clustering policy defaults are resolved here so [?cluster:None] and
   [?cluster:(Some First_ref)] share an entry. *)
type key = { k_procs : int; k_mode : mode; k_cluster : Cluster.policy }

type stats = {
  graph_builds : int;
  stream_builds : int;
  trace_builds : int;
  hint_builds : int;
  memo_hits : int;
  disk_hits : int;
  disk_misses : int;
  corrupt_evictions : int;
}

type t = {
  app : App.t;
  layout : Layout.t;
  origin : string;
  (* Content address of everything the cached stages depend on: the
     program and its disk layout, structurally serialized (No_sharing
     keeps the bytes independent of physical sharing, so equal values
     digest equally whatever path constructed them). *)
  digest : string;
  cache : Cachefs.t option;
  lock : Mutex.t;
  (* A ref cell (not a mutable field) so [derive] can share the built
     graph between contexts that differ only in layout. *)
  graph_cell : Concrete.graph option ref;
  streams_tbl : (key, Generate.segments array * int option) Hashtbl.t;
  trace_tbl : (key, Request.t list) Hashtbl.t;
  (* Filled alongside trace_tbl (from a build or a disk hit) so the
     round count is available without rebuilding the streams stage. *)
  rounds_tbl : (key, int option) Hashtbl.t;
  hint_tbl : (key * Oracle.space, Hint.t list) Hashtbl.t;
  mutable graph_builds : int;
  mutable stream_builds : int;
  mutable trace_builds : int;
  mutable hint_builds : int;
  mutable memo_hits : int;
}

let stats t =
  Mutex.protect t.lock (fun () ->
      let disk_hits, disk_misses, corrupt_evictions =
        match t.cache with
        | None -> (0, 0, 0)
        | Some c ->
            let k = Cachefs.counters c in
            (k.Cachefs.hits, k.Cachefs.misses, k.Cachefs.corrupt)
      in
      {
        graph_builds = t.graph_builds;
        stream_builds = t.stream_builds;
        trace_builds = t.trace_builds;
        hint_builds = t.hint_builds;
        memo_hits = t.memo_hits;
        disk_hits;
        disk_misses;
        corrupt_evictions;
      })

(* --- construction --- *)

let synth_app ~origin ~layout program =
  {
    App.name = origin;
    description = origin;
    program;
    striping = Striping.default;
    overrides =
      List.map
        (fun (e : Layout.entry) -> (e.Layout.decl.Ir.name, e.Layout.striping))
        layout.Layout.entries;
    paper_data_gb = 0.0;
    paper_requests = 0;
    paper_base_energy_j = 0.0;
    paper_io_time_ms = 0.0;
  }

let make ?cache ~app ~layout ~origin () =
  {
    app;
    layout;
    origin;
    digest =
      Digest.to_hex
        (Digest.string (Marshal.to_string (app.App.program, layout) [ Marshal.No_sharing ]));
    cache;
    lock = Mutex.create ();
    graph_cell = ref None;
    streams_tbl = Hashtbl.create 8;
    trace_tbl = Hashtbl.create 8;
    rounds_tbl = Hashtbl.create 8;
    hint_tbl = Hashtbl.create 8;
    graph_builds = 0;
    stream_builds = 0;
    trace_builds = 0;
    hint_builds = 0;
    memo_hits = 0;
  }

let create ?cache ?(origin = "<program>") ?default ?(overrides = []) program =
  let layout = Layout.make ?default ~overrides program in
  make ?cache ~app:(synth_app ~origin ~layout program) ~layout ~origin ()

let of_app ?cache (app : App.t) =
  let layout =
    Layout.make ~default:app.App.striping ~overrides:app.App.overrides app.App.program
  in
  make ?cache ~app ~layout ~origin:app.App.name ()

let stripe_of_spec (sp : Dp_lang.Ast.stripe_spec) =
  Striping.make ~unit_bytes:sp.unit_bytes ~factor:sp.factor ~start_disk:sp.start_disk

let load ?cache source =
  if String.length source > 4 && String.sub source 0 4 = "app:" then begin
    let name = String.sub source 4 (String.length source - 4) in
    match Workloads.by_name name with
    | Some app -> of_app ?cache app
    | None ->
        Format.kasprintf failwith "unknown application %s (available: %s)" name
          (String.concat ", " (Workloads.names ()))
  end
  else begin
    let { Resolver.program; stripes } = Resolver.load_file source in
    let overrides = List.map (fun (name, sp) -> (name, stripe_of_spec sp)) stripes in
    create ?cache ~origin:source ~overrides program
  end

let derive ~layout t =
  let d = make ?cache:t.cache ~app:t.app ~layout ~origin:t.origin () in
  { d with graph_cell = t.graph_cell; lock = t.lock }

let program t = t.app.App.program
let layout t = t.layout
let origin t = t.origin
let disks t = t.layout.Layout.disk_count
let app t = t.app
let digest t = t.digest
let cache t = t.cache

(* --- stages --- *)

(* Each stage takes the lock only around its own table: builds are
   serialized per context, and stages acquire their inputs (upstream
   stages) before locking, so locks never nest. *)

let graph t =
  Mutex.protect t.lock (fun () ->
      match !(t.graph_cell) with
      | Some g ->
          t.memo_hits <- t.memo_hits + 1;
          g
      | None ->
          let g = Prof.span "pipeline.graph" (fun () -> Concrete.build (program t)) in
          t.graph_cell := Some g;
          t.graph_builds <- t.graph_builds + 1;
          g)

let key ?(cluster = Cluster.First_ref) ~procs mode =
  { k_procs = procs; k_mode = mode; k_cluster = cluster }

let check_streams_args ~procs mode =
  if procs < 1 then
    invalid_arg (Printf.sprintf "Pipeline.streams: procs must be >= 1 (got %d)" procs);
  if mode = Reuse_multi && procs = 1 then
    invalid_arg "Pipeline.streams: the layout-aware mode needs several processors"

(* The one definition of the per-processor execution streams of every
   matrix version (formerly duplicated between bin/dpcc.ml and
   lib/harness/runner.ml, with dpcc unable to produce the
   conventional-partition restructured streams at procs > 1). *)
let build_streams t g ~cluster ~procs mode =
  let prog = program t in
  match (mode, procs) with
  | Original, 1 ->
      (Generate.single_stream g ~order:(Concrete.original_order g), None)
  | Original, _ ->
      (* Unmodified code, conventionally parallelized, fork-join nests. *)
      (Generate.original_segments prog g (Parallelize.conventional prog g ~procs), None)
  | Reuse_single, 1 ->
      let s = Reuse.schedule ~policy:cluster t.layout prog g in
      (Generate.single_stream g ~order:s.Reuse.order, Some s.Reuse.rounds)
  | Reuse_multi, 1 -> assert false (* rejected by check_streams_args *)
  | (Reuse_single | Reuse_multi), _ ->
      let rounds = ref 0 in
      let disks = t.layout.Layout.disk_count in
      (* Each processor begins its disk tour on a different disk so the
         tours do not contend for the same I/O node. *)
      let reuse p ~member =
        let s =
          Reuse.schedule_subset ~policy:cluster t.layout prog g
            ~start_disk:(p * disks / procs)
            ~member
        in
        rounds := max !rounds s.Reuse.rounds;
        s.Reuse.order
      in
      let segs =
        if mode = Reuse_multi then begin
          (* Global restructuring: the data-space assignment spans all
             nests, no synchronization between them (Fig. 6(b)). *)
          let assignment = Parallelize.layout_aware t.layout prog g ~procs in
          Generate.reordered_segments assignment ~order_of_proc:(fun p ->
              reuse p ~member:(fun seq -> assignment.Parallelize.owner.(seq) = p))
        end
        else begin
          (* The single-CPU algorithm applied to each processor's share
             of the conventionally parallelized code: the fork-join
             barriers between nests remain, so disk reuse is exploited
             within each nest only. *)
          let assignment = Parallelize.conventional prog g ~procs in
          let nest_ids =
            List.map (fun (n : Ir.nest) -> n.Ir.nest_id) prog.Ir.nests
          in
          Array.init procs (fun p ->
              List.map
                (fun nest_id ->
                  reuse p ~member:(fun seq ->
                      assignment.Parallelize.owner.(seq) = p
                      && g.Concrete.instances.(seq).Concrete.nest_id = nest_id))
                nest_ids)
        end
      in
      (segs, Some !rounds)

let streams ?cluster t ~procs mode =
  check_streams_args ~procs mode;
  let g = graph t in
  let k = key ?cluster ~procs mode in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.streams_tbl k with
      | Some v ->
          t.memo_hits <- t.memo_hits + 1;
          v
      | None ->
          let v =
            Prof.span "pipeline.streams" (fun () ->
                build_streams t g ~cluster:k.k_cluster ~procs mode)
          in
          Hashtbl.add t.streams_tbl k v;
          if not (Hashtbl.mem t.rounds_tbl k) then Hashtbl.add t.rounds_tbl k (snd v);
          t.stream_builds <- t.stream_builds + 1;
          v)

(* --- the persistent stage cache ---

   Only the trace and hint stages spill to disk: they subsume their
   upstream stages, so a warm run never touches the dependence graph or
   the reuse scheduler at all.  Trace payloads are binary trace frames
   ({!Dp_trace.Bin}), hint payloads Marshal blobs; both ride inside a
   Cachefs frame (versioned header + checksum trailer).  A decode
   failure after the frame verified means a format drift — the entry is
   quarantined and recomputed.  All disk traffic happens under the
   context mutex: stage lookups are already serialized, so the cache
   needs no locking of its own beyond its writer lock. *)

let stage_key t (k : key) stage extra =
  Cachefs.key
    ~parts:
      ([ t.digest; stage; mode_name k.k_mode; string_of_int k.k_procs;
         Cluster.policy_name k.k_cluster ]
      @ extra)

let cache_fetch : type a. t -> key:string -> a option =
 fun t ~key ->
  match t.cache with
  | None -> None
  | Some c -> (
      match Cachefs.get c ~key with
      | None -> None
      | Some payload -> (
          match (Marshal.from_string payload 0 : a) with
          | v -> Some v
          | exception (Failure _ | Invalid_argument _) ->
              Cachefs.report_undecodable c ~key;
              None))

(* Write-through is advisory: a dropped write (named lock timeout or
   plain I/O failure) costs a recompute on some future run, never this
   one — the in-memory memo already holds the value. *)
let cache_store t ~key v =
  match t.cache with
  | None -> ()
  | Some c -> (
      match Cachefs.put_result c ~key (Marshal.to_string v []) with
      | Ok () | Error (Cachefs.Lock_timeout _) -> ())

(* The trace stage spills as a binary trace frame (see {!Dp_trace.Bin})
   rather than a Marshal blob: the payload is then self-describing —
   [dpcc cache stat] can tell traces from the other entries by magic —
   and an order of magnitude smaller.  The codec's raw-float fallback
   keeps unquantized engine-bound timestamps bit-exact, so a warm run
   is byte-identical to a cold one.  The codec version is part of the
   key: a format bump makes old entries miss cleanly instead of
   misdecoding. *)

let trace_stage_key t k =
  stage_key t k "trace" [ "bin"; string_of_int Bin.format_version ]

let trace_cache_fetch t ~key =
  match t.cache with
  | None -> None
  | Some c -> (
      match Cachefs.get c ~key with
      | None -> None
      | Some payload -> (
          match Bin.decode payload with
          | Ok (reqs, _, _, rounds) -> Some (reqs, rounds)
          | Error _ ->
              Cachefs.report_undecodable c ~key;
              None))

let trace_cache_store t ~key (reqs, rounds) =
  match t.cache with
  | None -> ()
  | Some c -> (
      match Cachefs.put_result c ~key (Bin.encode ?rounds reqs) with
      | Ok () | Error (Cachefs.Lock_timeout _) -> ())

(* The trace entry carries the scheduler round count too, so a warm
   run can answer [rounds] without rebuilding the streams stage. *)
let trace_lookup t k =
  match Hashtbl.find_opt t.trace_tbl k with
  | Some reqs ->
      t.memo_hits <- t.memo_hits + 1;
      Some (reqs, try Hashtbl.find t.rounds_tbl k with Not_found -> None)
  | None -> (
      match trace_cache_fetch t ~key:(trace_stage_key t k) with
      | Some ((reqs, rounds) as v) ->
          Hashtbl.add t.trace_tbl k reqs;
          Hashtbl.replace t.rounds_tbl k rounds;
          Some v
      | None -> None)

let trace ?cluster t ~procs mode =
  check_streams_args ~procs mode;
  let k = key ?cluster ~procs mode in
  match Mutex.protect t.lock (fun () -> trace_lookup t k) with
  | Some (reqs, _) -> reqs
  | None ->
      let segs, rounds = streams ?cluster t ~procs mode in
      let g = graph t in
      Mutex.protect t.lock (fun () ->
          (* Another domain may have built or fetched it meanwhile. *)
          match Hashtbl.find_opt t.trace_tbl k with
          | Some v ->
              t.memo_hits <- t.memo_hits + 1;
              v
          | None ->
              let v =
                Prof.span "pipeline.trace" (fun () ->
                    Generate.trace t.layout (program t) g segs)
              in
              Hashtbl.add t.trace_tbl k v;
              Hashtbl.replace t.rounds_tbl k rounds;
              t.trace_builds <- t.trace_builds + 1;
              trace_cache_store t ~key:(trace_stage_key t k) (v, rounds);
              v)

let rounds ?cluster t ~procs mode =
  check_streams_args ~procs mode;
  let k = key ?cluster ~procs mode in
  match Mutex.protect t.lock (fun () -> trace_lookup t k) with
  | Some (_, rounds) -> rounds
  | None -> snd (streams ?cluster t ~procs mode)

let hints ?cluster t ~procs ~space mode =
  check_streams_args ~procs mode;
  let k = key ?cluster ~procs mode in
  let hk = (k, space) in
  let dk = stage_key t k "hints" [ Oracle.space_name space ] in
  let lookup () =
    match Hashtbl.find_opt t.hint_tbl hk with
    | Some v ->
        t.memo_hits <- t.memo_hits + 1;
        Some v
    | None -> (
        match (cache_fetch t ~key:dk : Hint.t list option) with
        | Some v ->
            Hashtbl.add t.hint_tbl hk v;
            Some v
        | None -> None)
  in
  match Mutex.protect t.lock lookup with
  | Some v -> v
  | None ->
      let reqs = trace ?cluster t ~procs mode in
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.hint_tbl hk with
          | Some v ->
              t.memo_hits <- t.memo_hits + 1;
              v
          | None ->
              let v =
                Prof.span "pipeline.hints" (fun () ->
                    Oracle.hints_of_trace ~space ~disks:(disks t) reqs)
              in
              Hashtbl.add t.hint_tbl hk v;
              t.hint_builds <- t.hint_builds + 1;
              cache_store t ~key:dk v;
              v)

(* Compiler hints for the proactive policies: the hint emitter replays
   the nominal trace and plans each predicted gap, so the engine
   executes directives instead of consulting its omniscient planner. *)
let space_of_policy = function
  | Policy.Tpm { Policy.proactive = true; _ } -> Some Oracle.Tpm_space
  | Policy.Drpm { Policy.proactive = true; _ } -> Some Oracle.Drpm_space
  | _ -> None

let hints_for ?cluster t ~procs ~policy mode =
  match space_of_policy policy with
  | None -> []
  | Some space -> hints ?cluster t ~procs ~space mode

let simulate ?cluster ?faults ?retry ?obs ?record_timeline ?shards t ~procs ~policy mode =
  let reqs = trace ?cluster t ~procs mode in
  let hints = hints_for ?cluster t ~procs ~policy mode in
  Prof.span "pipeline.simulate" (fun () ->
      Engine.simulate ?record_timeline ?obs ?faults ?retry ?shards ~hints ~disks:(disks t)
        policy reqs)
