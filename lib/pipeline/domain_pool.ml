(* Re-export: the pool moved to [Dp_util.Domain_pool] so the engine can
   shard across domains without depending on the pipeline layer.  This
   shim keeps [Dp_pipeline.Domain_pool] working for existing callers. *)

include Dp_util.Domain_pool
