(* Work-stealing-free pool: tasks are claimed off a shared atomic
   counter and results land in a slot array indexed by input position,
   so the output order is the input order whatever the interleaving. *)

exception Task_error of int * exn

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Domain_pool.map: jobs must be >= 1";
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    (* First failure in task order; later failures are dropped (the
       serial path would never have reached them). *)
    let error = Atomic.make None in
    let record_error i exn =
      let rec retry () =
        match Atomic.get error with
        | Some (Task_error (j, _)) when j <= i -> ()
        | old ->
            if not (Atomic.compare_and_set error old (Some (Task_error (i, exn)))) then
              retry ()
      in
      retry ()
    in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f input.(i) with
          | v -> out.(i) <- Some v
          | exception exn -> record_error i exn);
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get error with
    | Some (Task_error (_, exn)) -> raise exn
    | Some exn -> raise exn
    | None -> Array.to_list (Array.map Option.get out)
  end

let default_jobs () = min 8 (max 1 (Domain.recommended_domain_count () - 1))
