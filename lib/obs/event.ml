type power_state = Active | Idle of int | Standby | Transition

type t =
  | Power of {
      disk : int;
      state : power_state;
      start_ms : float;
      stop_ms : float;
      charge_ms : float;
      energy_j : float;
    }
  | Service of {
      disk : int;
      proc : int;
      arrival_ms : float;
      start_ms : float;
      stop_ms : float;
      lba : int;
      bytes : int;
    }
  | Hint_exec of { disk : int; at_ms : float; action : string }
  | Fault of { disk : int; at_ms : float; kind : string; cost_ms : float }
  | Decision of { disk : int; at_ms : float; decision : string }
  | Cache of { at_ms : float; op : string; key : string; bytes : int }
  | Repair of { disk : int; at_ms : float; op : string; blocks : int; cost_ms : float }
  | Deadline of {
      disk : int;
      proc : int;
      at_ms : float;
      response_ms : float;
      deadline_ms : float;
    }

let disk = function
  | Power { disk; _ } | Service { disk; _ } | Hint_exec { disk; _ } | Fault { disk; _ }
  | Decision { disk; _ } | Repair { disk; _ } | Deadline { disk; _ } ->
      disk
  | Cache _ -> -1

let time_ms = function
  | Power { start_ms; _ } | Service { start_ms; _ } -> start_ms
  | Hint_exec { at_ms; _ } | Fault { at_ms; _ } | Decision { at_ms; _ } | Cache { at_ms; _ }
  | Repair { at_ms; _ } | Deadline { at_ms; _ } ->
      at_ms

let state_name = function
  | Active -> "active"
  | Idle _ -> "idle"
  | Standby -> "standby"
  | Transition -> "transition"

let track_name = function
  | Active -> "ACTIVE"
  | Idle rpm -> Printf.sprintf "IDLE@%d" rpm
  | Standby -> "STANDBY"
  | Transition -> "TRANSITION"

(* Self-contained JSON rendering (the library must not depend on the
   harness): escaped strings, non-finite floats as null. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json = function
  | Power { disk; state; start_ms; stop_ms; charge_ms; energy_j } ->
      let rpm = match state with Idle r -> Printf.sprintf ",\"rpm\":%d" r | _ -> "" in
      Printf.sprintf
        "{\"type\":\"power\",\"disk\":%d,\"state\":\"%s\"%s,\"start_ms\":%s,\"stop_ms\":%s,\"charge_ms\":%s,\"energy_j\":%s}"
        disk (state_name state) rpm (jfloat start_ms) (jfloat stop_ms) (jfloat charge_ms)
        (jfloat energy_j)
  | Service { disk; proc; arrival_ms; start_ms; stop_ms; lba; bytes } ->
      Printf.sprintf
        "{\"type\":\"service\",\"disk\":%d,\"proc\":%d,\"arrival_ms\":%s,\"start_ms\":%s,\"stop_ms\":%s,\"response_ms\":%s,\"lba\":%d,\"bytes\":%d}"
        disk proc (jfloat arrival_ms) (jfloat start_ms) (jfloat stop_ms)
        (jfloat (stop_ms -. arrival_ms))
        lba bytes
  | Hint_exec { disk; at_ms; action } ->
      Printf.sprintf "{\"type\":\"hint\",\"disk\":%d,\"at_ms\":%s,\"action\":\"%s\"}" disk
        (jfloat at_ms) (escape action)
  | Fault { disk; at_ms; kind; cost_ms } ->
      Printf.sprintf
        "{\"type\":\"fault\",\"disk\":%d,\"at_ms\":%s,\"kind\":\"%s\",\"cost_ms\":%s}" disk
        (jfloat at_ms) (escape kind) (jfloat cost_ms)
  | Decision { disk; at_ms; decision } ->
      Printf.sprintf "{\"type\":\"decision\",\"disk\":%d,\"at_ms\":%s,\"decision\":\"%s\"}" disk
        (jfloat at_ms) (escape decision)
  | Cache { at_ms; op; key; bytes } ->
      Printf.sprintf "{\"type\":\"cache\",\"at_ms\":%s,\"op\":\"%s\",\"key\":\"%s\",\"bytes\":%d}"
        (jfloat at_ms) (escape op) (escape key) bytes
  | Repair { disk; at_ms; op; blocks; cost_ms } ->
      Printf.sprintf
        "{\"type\":\"repair\",\"disk\":%d,\"at_ms\":%s,\"op\":\"%s\",\"blocks\":%d,\"cost_ms\":%s}"
        disk (jfloat at_ms) (escape op) blocks (jfloat cost_ms)
  | Deadline { disk; proc; at_ms; response_ms; deadline_ms } ->
      Printf.sprintf
        "{\"type\":\"deadline\",\"disk\":%d,\"proc\":%d,\"at_ms\":%s,\"response_ms\":%s,\"deadline_ms\":%s}"
        disk proc (jfloat at_ms) (jfloat response_ms) (jfloat deadline_ms)

let pp ppf e = Format.pp_print_string ppf (to_json e)
