(** Event recorders.

    The sink contract:

    - {!null} is the default everywhere.  [enabled null = false], and
      every producer must guard event {e construction} (not just
      emission) on {!enabled} — with the null sink installed the
      engine's hot loop allocates nothing for observability (the
      [obs-overhead] bench section enforces this).
    - {!ring} keeps the last [capacity] events in a fixed circular
      buffer; older events are overwritten and counted in {!dropped}.
      This is the in-memory recorder reports are built from.
    - {!stream} hands every event to a callback as it happens — the
      streaming JSONL writer is [stream (fun e -> output_string oc
      (Event.to_json e ^ "\n"))].

    Sinks are single-threaded, like the simulator. *)

type t

val null : t
val ring : ?capacity:int -> unit -> t
(** A bounded circular recorder (default capacity 65536 events). *)

val stream : (Event.t -> unit) -> t

val enabled : t -> bool
(** [false] only for {!null}.  Producers must not construct an event
    when this is [false]. *)

val emit : t -> Event.t -> unit
(** No-op on {!null}. *)

val events : t -> Event.t list
(** Recorded events, oldest first.  Empty for {!null} and {!stream}. *)

val length : t -> int
(** Events currently held (ring) — 0 for null/stream. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)
