(** Event recorders.

    The sink contract:

    - {!null} is the default everywhere.  [enabled null = false], and
      every producer must guard event {e construction} (not just
      emission) on {!enabled} — with the null sink installed the
      engine's hot loop allocates nothing for observability (the
      [obs-overhead] bench section enforces this).
    - {!ring} keeps the last [capacity] events in a fixed circular
      buffer; older events are overwritten and counted in {!dropped}.
      This is the in-memory recorder reports are built from.
    - {!stream} hands every event to a callback as it happens — the
      streaming JSONL writer is [stream (fun e -> output_string oc
      (Event.to_json e ^ "\n"))].  Stream sinks retain {e nothing}:
      {!events} and {!length} are always empty/zero for them (see
      below).

    Sinks are single-threaded, like the simulator. *)

type t

(** What a sink does with the events it is handed — use {!kind} to
    detect a non-recording sink instead of misreading {!events}'s
    empty list as "no events happened". *)
type kind =
  | Null  (** discards everything; producers skip construction *)
  | Ring  (** records the last [capacity] events *)
  | Stream  (** hands events to a callback, retains nothing *)

val null : t

val ring : ?capacity:int -> unit -> t
(** A bounded circular recorder (default capacity 65536 events). *)

val stream : (Event.t -> unit) -> t

val kind : t -> kind

val enabled : t -> bool
(** [false] only for {!null}.  Producers must not construct an event
    when this is [false]. *)

val emit : t -> Event.t -> unit
(** No-op on {!null}. *)

val events : t -> Event.t list
(** Recorded events, oldest first.  {b Only {!Ring} sinks record}: the
    result is always [[]] for {!Null} {e and} {!Stream} sinks — an
    empty list from a stream sink does not mean nothing was emitted.
    Check {!kind} before interpreting it. *)

val length : t -> int
(** Events currently held.  Like {!events}, this is about {e
    retention}: 0 for {!Null} and for {!Stream} sinks regardless of
    how many events passed through the callback. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)
