type entry = {
  p_name : string;
  mutable total_s : float;
  mutable calls : int;
  mutable items : int;
}

let on = ref false
let table : (string, entry) Hashtbl.t = Hashtbl.create 16

(* The table is global and spans may close from any domain (the
   harness fans experiment rows out over a domain pool), so updates are
   serialized.  The disabled fast path stays a single branch. *)
let lock = Mutex.create ()

let enable () = on := true
let disable () = on := false
let enabled () = !on
let reset () = Mutex.protect lock (fun () -> Hashtbl.reset table)

let entry name =
  match Hashtbl.find_opt table name with
  | Some e -> e
  | None ->
      let e = { p_name = name; total_s = 0.0; calls = 0; items = 0 } in
      Hashtbl.add table name e;
      e

let span name f =
  if not !on then f ()
  else begin
    let t0 = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Sys.time () -. t0 in
        Mutex.protect lock (fun () ->
            let e = entry name in
            e.total_s <- e.total_s +. dt;
            e.calls <- e.calls + 1))
      f
  end

let count name n =
  if !on then
    Mutex.protect lock (fun () ->
        let e = entry name in
        e.items <- e.items + n)

let entries () =
  let all = Mutex.protect lock (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) table []) in
  List.sort (fun a b -> compare b.total_s a.total_s) all

let pp_table ppf () =
  match entries () with
  | [] -> Format.fprintf ppf "no profiled passes (profiling disabled?)@."
  | es ->
      Format.fprintf ppf "@[<v>%-36s %10s %7s %9s@," "pass" "total (ms)" "calls" "items";
      List.iter
        (fun e ->
          Format.fprintf ppf "%-36s %10.2f %7d %9d@," e.p_name (e.total_s *. 1000.0) e.calls
            e.items)
        es;
      Format.fprintf ppf "@]"
