(* Frame rendering over Live state.  Everything printed is derived
   from simulated time, so frames are deterministic and replayable. *)

type mode = Ansi | Plain

let csi_home = "\x1b[H"
let csi_eol = "\x1b[K"
let csi_eos = "\x1b[J"

let header b mode live =
  let line =
    Printf.sprintf "dpower live  t=%.1fs  epoch %d  events %d" (Live.now_ms live /. 1000.0)
      (Live.epochs_completed live)
      (Live.events_seen live)
  in
  Buffer.add_string b line;
  if mode = Ansi then Buffer.add_string b csi_eol;
  Buffer.add_char b '\n';
  let cols =
    "disk  state         res(s)  rate(Hz)  p50(ms)  p95(ms)  energy(J)    req  flt  rep  ddl  track"
  in
  Buffer.add_string b cols;
  if mode = Ansi then Buffer.add_string b csi_eol;
  Buffer.add_char b '\n'

let row b mode live (d : Live.disk_live) =
  let line =
    Printf.sprintf "%4d  %-12s %7.1f %9.2f %8.1f %8.1f %10.1f %6d %4d %4d %4d  %s" d.Live.disk
      (Event.track_name d.Live.state)
      (Live.residency_ms live ~disk:d.Live.disk /. 1000.0)
      (Live.arrival_rate_hz live ~disk:d.Live.disk)
      (Live.recent_percentile live ~disk:d.Live.disk 0.50)
      (Live.recent_percentile live ~disk:d.Live.disk 0.95)
      d.Live.energy_j d.Live.requests d.Live.faults d.Live.repairs d.Live.deadline_misses
      (Bytes.to_string (Live.track_chars live ~disk:d.Live.disk))
  in
  Buffer.add_string b line;
  if mode = Ansi then Buffer.add_string b csi_eol;
  Buffer.add_char b '\n'

let frame ~mode live =
  let b = Buffer.create 512 in
  (match mode with
  | Ansi -> Buffer.add_string b csi_home
  | Plain -> Buffer.add_string b "----\n");
  header b mode live;
  Array.iter (row b mode live) (Live.disks live);
  if mode = Ansi then Buffer.add_string b csi_eos;
  Buffer.contents b

let driver ?(mode = Plain) ~out live =
  let last = ref (Live.epochs_completed live) in
  let feed ev =
    Live.feed live ev;
    let now = Live.epochs_completed live in
    (* One repaint per epoch crossing keeps output proportional to
       simulated time, not to event density; an event that skips several
       epochs still yields a single frame of the state after it. *)
    if now > !last then begin
      last := now;
      out (frame ~mode live)
    end
  in
  let finish () = out (frame ~mode live) in
  (feed, finish)
