type histogram = {
  h_name : string;
  edges : float array;
  counts : int array;
  mutable sum : float;
  mutable n : int;
  mutable vmax : float;
}

let log_edges ?(per_decade = 1) ~lo ~hi () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Metrics.log_edges: need 0 < lo < hi";
  if per_decade < 1 then invalid_arg "Metrics.log_edges: per_decade must be >= 1";
  let ratio = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec go acc v = if v >= hi *. (1.0 -. 1e-9) then List.rev (hi :: acc) else go (v :: acc) (v *. ratio) in
  Array.of_list (go [] lo)

let default_edges = log_edges ~lo:1.0 ~hi:1e7 ()

let histogram ?(edges = default_edges) h_name =
  if Array.length edges = 0 then invalid_arg "Metrics.histogram: empty edges";
  Array.iteri
    (fun k e -> if k > 0 && e <= edges.(k - 1) then invalid_arg "Metrics.histogram: edges not ascending")
    edges;
  {
    h_name;
    edges;
    counts = Array.make (Array.length edges + 1) 0;
    sum = 0.0;
    n = 0;
    vmax = 0.0;
  }

let observe h v =
  let b = ref 0 in
  while !b < Array.length h.edges && v >= h.edges.(!b) do incr b done;
  h.counts.(!b) <- h.counts.(!b) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v > h.vmax then h.vmax <- v

let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let want = q *. float_of_int h.n in
    let acc = ref 0 and k = ref 0 in
    while !k < Array.length h.counts - 1 && float_of_int (!acc + h.counts.(!k)) < want do
      acc := !acc + h.counts.(!k);
      incr k
    done;
    if !k < Array.length h.edges then h.edges.(!k) else h.vmax
  end

let merge_into ~dst src =
  if dst.edges <> src.edges then invalid_arg "Metrics.merge_into: mismatched edges";
  Array.iteri (fun k c -> dst.counts.(k) <- dst.counts.(k) + c) src.counts;
  dst.sum <- dst.sum +. src.sum;
  dst.n <- dst.n + src.n;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let pp_histogram ppf h =
  Format.fprintf ppf "@[<v>%s: %d observation(s), mean %.2f, max %.2f@," h.h_name h.n (mean h)
    h.vmax;
  Array.iteri
    (fun k count ->
      if count > 0 then begin
        let lo = if k = 0 then 0.0 else h.edges.(k - 1) in
        let hi_label =
          if k < Array.length h.edges then Printf.sprintf "%g" h.edges.(k) else "inf"
        in
        Format.fprintf ppf "  %10g .. %-10s %8d  %5.1f%%@," lo hi_label count
          (100.0 *. float_of_int count /. float_of_int h.n)
      end)
    h.counts;
  Format.fprintf ppf "@]"

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type metric = Counter of counter | Gauge of gauge | Hist of histogram
type registry = (string, metric) Hashtbl.t

let registry () : registry = Hashtbl.create 16

let counter reg name =
  match Hashtbl.find_opt reg name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %s is another metric kind" name)
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add reg name (Counter c);
      c

let incr ?(by = 1) c = c.count <- c.count + by

let gauge reg name =
  match Hashtbl.find_opt reg name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is another metric kind" name)
  | None ->
      let g = { g_name = name; value = 0.0 } in
      Hashtbl.add reg name (Gauge g);
      g

let set g v = g.value <- v

let hist ?edges reg name =
  match Hashtbl.find_opt reg name with
  | Some (Hist h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.hist: %s is another metric kind" name)
  | None ->
      let h = histogram ?edges name in
      Hashtbl.add reg name (Hist h);
      h

let sorted_by name xs = List.sort (fun a b -> compare (name a) (name b)) xs

let counters reg =
  sorted_by
    (fun c -> c.c_name)
    (Hashtbl.fold (fun _ m acc -> match m with Counter c -> c :: acc | _ -> acc) reg [])

let gauges reg =
  sorted_by
    (fun g -> g.g_name)
    (Hashtbl.fold (fun _ m acc -> match m with Gauge g -> g :: acc | _ -> acc) reg [])

let histograms reg =
  sorted_by
    (fun h -> h.h_name)
    (Hashtbl.fold (fun _ m acc -> match m with Hist h -> h :: acc | _ -> acc) reg [])

let pp ppf reg =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%s: %d@," c.c_name c.count) (counters reg);
  List.iter (fun g -> Format.fprintf ppf "%s: %g@," g.g_name g.value) (gauges reg);
  List.iter (fun h -> Format.fprintf ppf "%a@," pp_histogram h) (histograms reg);
  Format.fprintf ppf "@]"
