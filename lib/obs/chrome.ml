let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* Timestamps need absolute, not relative, precision: %.6g loses hundreds
   of microseconds on a minutes-long run, which reads as gaps between
   spans in the viewer.  Nanosecond-fixed notation keeps tracks
   contiguous at any run length. *)
let jts f = if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

let us_of_ms ms = ms *. 1000.0

let trace_json ?until_ms events =
  let clip stop = match until_ms with None -> stop | Some u -> Float.min stop u in
  let b = Buffer.create 4096 in
  let first = ref true in
  let add_event s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  (* One named track per disk. *)
  let disks = List.fold_left (fun acc e -> max acc (Event.disk e + 1)) 0 events in
  for d = 0 to disks - 1 do
    add_event
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"disk %d\"}}"
         d d);
    add_event
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}"
         d d)
  done;
  List.iter
    (fun e ->
      match e with
      | Event.Power p ->
          let stop = clip p.stop_ms in
          if stop > p.start_ms then
            add_event
              (Printf.sprintf
                 "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"cat\":\"power\",\"name\":\"%s\",\"args\":{\"energy_j\":%s%s}}"
                 p.disk
                 (jts (us_of_ms p.start_ms))
                 (jts (us_of_ms (stop -. p.start_ms)))
                 (Event.track_name p.state) (jfloat p.energy_j)
                 (match p.state with
                 | Event.Idle rpm -> Printf.sprintf ",\"rpm\":%d" rpm
                 | _ -> ""))
      | Event.Service s ->
          (* Nested under the ACTIVE span on the same track, keeping the
             request's identity (lba, size, response) inspectable. *)
          if s.stop_ms > s.start_ms then
            add_event
              (Printf.sprintf
                 "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"cat\":\"io\",\"name\":\"request\",\"args\":{\"lba\":%d,\"bytes\":%d,\"response_ms\":%s}}"
                 s.disk
                 (jts (us_of_ms s.start_ms))
                 (jts (us_of_ms (clip s.stop_ms -. s.start_ms)))
                 s.lba s.bytes
                 (jfloat (s.stop_ms -. s.arrival_ms)))
      | Event.Hint_exec h ->
          add_event
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"cat\":\"hint\",\"name\":\"hint:%s\"}"
               h.disk
               (jts (us_of_ms h.at_ms))
               h.action)
      | Event.Fault f ->
          add_event
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"cat\":\"fault\",\"name\":\"fault:%s\",\"args\":{\"cost_ms\":%s}}"
               f.disk
               (jts (us_of_ms f.at_ms))
               f.kind (jfloat f.cost_ms))
      | Event.Decision d ->
          add_event
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"cat\":\"decision\",\"name\":\"%s\"}"
               d.disk
               (jts (us_of_ms d.at_ms))
               d.decision)
      | Event.Repair r ->
          add_event
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"cat\":\"repair\",\"name\":\"repair:%s\",\"args\":{\"blocks\":%d,\"cost_ms\":%s}}"
               r.disk
               (jts (us_of_ms r.at_ms))
               r.op r.blocks (jfloat r.cost_ms))
      | Event.Deadline d ->
          add_event
            (Printf.sprintf
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"cat\":\"deadline\",\"name\":\"deadline-miss\",\"args\":{\"proc\":%d,\"response_ms\":%s,\"deadline_ms\":%s}}"
               d.disk
               (jts (us_of_ms d.at_ms))
               d.proc (jfloat d.response_ms) (jfloat d.deadline_ms))
      (* Stage-cache events happen at compile time, off the simulated
         disk timeline — they have no track here. *)
      | Event.Cache _ -> ())
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write ?until_ms path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_json ?until_ms events))
