(* Rolling per-disk state over the event stream.  Everything here is
   driven by simulated time from the events themselves — no wall clock
   anywhere — so the fold is deterministic and replayable. *)

type disk_live = {
  disk : int;
  mutable state : Event.power_state;
  mutable state_since_ms : float;
  mutable now_ms : float;
  mutable energy_j : float;
  mutable busy_ms : float;
  mutable idle_ms : float;
  mutable standby_ms : float;
  mutable transition_ms : float;
  mutable requests : int;
  mutable hints : int;
  mutable faults : int;
  mutable repairs : int;
  mutable deadline_misses : int;
  mutable ewma_interarrival_ms : float;
  mutable last_arrival_ms : float;
  response_ms : Metrics.histogram;
  recent : float array;
  mutable recent_len : int;
  mutable recent_next : int;
}

(* Per-disk epoch machinery for the power-state track: wall-extent
   milliseconds of the current epoch split by state, finalized into one
   character per elapsed epoch. *)
type epoch_state = {
  mutable cur_epoch : int;
  acc : float array;  (* active / idle / standby / transition ms *)
  trk : Bytes.t;  (* char ring, one byte per finalized epoch *)
  mutable trk_len : int;
  mutable trk_next : int;
}

type t = {
  e_ms : float;
  d : disk_live array;
  ep : epoch_state array;
  mutable g_now_ms : float;
  mutable seen : int;
}

let state_index = function
  | Event.Active -> 0
  | Event.Idle _ -> 1
  | Event.Standby -> 2
  | Event.Transition -> 3

let state_char = [| 'A'; 'i'; '.'; '~' |]

let create ?(epoch_ms = 1000.0) ?(window = 256) ?(track = 64) ~disks () =
  if disks < 1 then invalid_arg "Live.create: disks must be >= 1";
  if epoch_ms <= 0.0 then invalid_arg "Live.create: epoch_ms must be > 0";
  if window < 1 then invalid_arg "Live.create: window must be >= 1";
  if track < 1 then invalid_arg "Live.create: track must be >= 1";
  {
    e_ms = epoch_ms;
    d =
      Array.init disks (fun disk ->
          {
            disk;
            state = Event.Idle 0;
            state_since_ms = 0.0;
            now_ms = 0.0;
            energy_j = 0.0;
            busy_ms = 0.0;
            idle_ms = 0.0;
            standby_ms = 0.0;
            transition_ms = 0.0;
            requests = 0;
            hints = 0;
            faults = 0;
            repairs = 0;
            deadline_misses = 0;
            ewma_interarrival_ms = 0.0;
            last_arrival_ms = Float.nan;
            response_ms =
              Metrics.histogram ~edges:Report.response_edges
                (Printf.sprintf "disk %d live responses (ms)" disk);
            recent = Array.make window 0.0;
            recent_len = 0;
            recent_next = 0;
          });
    ep =
      Array.init disks (fun _ ->
          {
            cur_epoch = 0;
            acc = Array.make 4 0.0;
            trk = Bytes.make track '?';
            trk_len = 0;
            trk_next = 0;
          });
    g_now_ms = 0.0;
    seen = 0;
  }

let check_disk t where disk =
  if disk < 0 || disk >= Array.length t.d then
    invalid_arg (Printf.sprintf "Live.%s: event disk out of range" where)

(* Close the current epoch of one disk: push the state it spent the
   most time in (or '?' when no span covered it) and start the next. *)
let finalize_epoch e =
  let best = ref (-1) and best_ms = ref 0.0 in
  for k = 0 to 3 do
    if e.acc.(k) > !best_ms then begin
      best := k;
      best_ms := e.acc.(k)
    end;
    e.acc.(k) <- 0.0
  done;
  let c = if !best < 0 then '?' else state_char.(!best) in
  Bytes.set e.trk e.trk_next c;
  let cap = Bytes.length e.trk in
  e.trk_next <- (e.trk_next + 1) mod cap;
  if e.trk_len < cap then e.trk_len <- e.trk_len + 1

(* Attribute the wall extent [start, stop) to epochs.  O(#epochs the
   span crosses), which amortizes to O(1) per epoch over a run; no
   allocation. *)
let span_track t e start stop sidx =
  if stop > start then begin
    let s = ref (Float.max start (float_of_int e.cur_epoch *. t.e_ms)) in
    while float_of_int (e.cur_epoch + 1) *. t.e_ms <= stop do
      let upto = float_of_int (e.cur_epoch + 1) *. t.e_ms in
      if upto > !s then begin
        e.acc.(sidx) <- e.acc.(sidx) +. (upto -. !s);
        s := upto
      end;
      finalize_epoch e;
      e.cur_epoch <- e.cur_epoch + 1
    done;
    if stop > !s then e.acc.(sidx) <- e.acc.(sidx) +. (stop -. !s)
  end

let bump_now t at =
  if at > t.g_now_ms then t.g_now_ms <- at

let feed t ev =
  t.seen <- t.seen + 1;
  match ev with
  | Event.Power p ->
      check_disk t "feed" p.disk;
      let d = t.d.(p.disk) in
      d.energy_j <- d.energy_j +. p.energy_j;
      let sidx = state_index p.state in
      (match sidx with
      | 0 -> d.busy_ms <- d.busy_ms +. p.charge_ms
      | 1 -> d.idle_ms <- d.idle_ms +. p.charge_ms
      | 2 -> d.standby_ms <- d.standby_ms +. p.charge_ms
      | _ -> d.transition_ms <- d.transition_ms +. p.charge_ms);
      (* Residency clock: a span of a new state (an RPM change counts —
         IDLE@12000 and IDLE@6000 are different rows on the console)
         restarts it; contiguous spans of the same state extend it. *)
      if d.state <> p.state || p.start_ms > d.now_ms then begin
        d.state <- p.state;
        d.state_since_ms <- p.start_ms
      end;
      if p.stop_ms > d.now_ms then d.now_ms <- p.stop_ms;
      span_track t t.ep.(p.disk) p.start_ms p.stop_ms sidx;
      bump_now t p.stop_ms
  | Event.Service s ->
      check_disk t "feed" s.disk;
      let d = t.d.(s.disk) in
      d.requests <- d.requests + 1;
      let resp = s.stop_ms -. s.arrival_ms in
      Metrics.observe d.response_ms resp;
      d.recent.(d.recent_next) <- resp;
      d.recent_next <- (d.recent_next + 1) mod Array.length d.recent;
      if d.recent_len < Array.length d.recent then d.recent_len <- d.recent_len + 1;
      (* EWMA over inter-arrival times, alpha 0.2: recent enough to
         follow phase changes, smooth enough to read at a glance. *)
      if not (Float.is_nan d.last_arrival_ms) then begin
        let dt = s.arrival_ms -. d.last_arrival_ms in
        if dt >= 0.0 then
          d.ewma_interarrival_ms <-
            (if d.ewma_interarrival_ms = 0.0 then dt
             else (0.2 *. dt) +. (0.8 *. d.ewma_interarrival_ms))
      end;
      d.last_arrival_ms <- s.arrival_ms;
      bump_now t s.stop_ms
  | Event.Hint_exec h ->
      check_disk t "feed" h.disk;
      t.d.(h.disk).hints <- t.d.(h.disk).hints + 1;
      bump_now t h.at_ms
  | Event.Fault f ->
      check_disk t "feed" f.disk;
      t.d.(f.disk).faults <- t.d.(f.disk).faults + 1;
      bump_now t f.at_ms
  | Event.Repair r ->
      check_disk t "feed" r.disk;
      t.d.(r.disk).repairs <- t.d.(r.disk).repairs + 1;
      bump_now t r.at_ms
  | Event.Deadline dl ->
      check_disk t "feed" dl.disk;
      t.d.(dl.disk).deadline_misses <- t.d.(dl.disk).deadline_misses + 1;
      bump_now t dl.at_ms
  | Event.Decision dc ->
      check_disk t "feed" dc.disk;
      bump_now t dc.at_ms
  (* Stage-cache events are process-level (wall clock, disk -1). *)
  | Event.Cache _ -> ()

let sink t = Sink.stream (feed t)
let disks t = t.d
let now_ms t = t.g_now_ms
let events_seen t = t.seen
let epoch_ms t = t.e_ms
let epochs_completed t = int_of_float (t.g_now_ms /. t.e_ms)

let percentile t ~disk q =
  check_disk t "percentile" disk;
  Metrics.quantile t.d.(disk).response_ms q

let recent_percentile t ~disk q =
  check_disk t "recent_percentile" disk;
  let d = t.d.(disk) in
  if d.recent_len = 0 then 0.0
  else begin
    let a = Array.sub d.recent 0 d.recent_len in
    Array.sort Float.compare a;
    let n = d.recent_len in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    a.(min (n - 1) (max 0 (rank - 1)))
  end

let arrival_rate_hz t ~disk =
  check_disk t "arrival_rate_hz" disk;
  let w = t.d.(disk).ewma_interarrival_ms in
  if w > 0.0 then 1000.0 /. w else 0.0

let residency_ms t ~disk =
  check_disk t "residency_ms" disk;
  let d = t.d.(disk) in
  Float.max 0.0 (d.now_ms -. d.state_since_ms)

let track_chars t ~disk =
  check_disk t "track_chars" disk;
  let e = t.ep.(disk) in
  let cap = Bytes.length e.trk in
  let first = if e.trk_len < cap then 0 else e.trk_next in
  Bytes.init e.trk_len (fun i -> Bytes.get e.trk ((first + i) mod cap))
