type ring = {
  buf : Event.t array;
  mutable len : int;  (* events held, <= capacity *)
  mutable next : int;  (* write cursor *)
  mutable dropped : int;
}

type t = Null | Ring of ring | Stream of (Event.t -> unit)

let null = Null

(* A throwaway event to initialize the circular buffer. *)
let dummy =
  Event.Power
    { disk = 0; state = Event.Standby; start_ms = 0.0; stop_ms = 0.0; charge_ms = 0.0; energy_j = 0.0 }

let ring ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Sink.ring: capacity must be >= 1";
  Ring { buf = Array.make capacity dummy; len = 0; next = 0; dropped = 0 }

let stream f = Stream f
let enabled = function Null -> false | Ring _ | Stream _ -> true

let emit t e =
  match t with
  | Null -> ()
  | Stream f -> f e
  | Ring r ->
      let cap = Array.length r.buf in
      r.buf.(r.next) <- e;
      r.next <- (r.next + 1) mod cap;
      if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

let events = function
  | Null | Stream _ -> []
  | Ring r ->
      let cap = Array.length r.buf in
      let first = if r.len < cap then 0 else r.next in
      List.init r.len (fun i -> r.buf.((first + i) mod cap))

let length = function Null | Stream _ -> 0 | Ring r -> r.len
let dropped = function Null | Stream _ -> 0 | Ring r -> r.dropped
