type ring = {
  buf : Event.t array;
  mutable len : int;  (* events held, <= capacity *)
  mutable next : int;  (* write cursor *)
  mutable dropped : int;
}

type kind = Null | Ring | Stream

type t = K_null | K_ring of ring | K_stream of (Event.t -> unit)

let null = K_null

(* A throwaway event to initialize the circular buffer. *)
let dummy =
  Event.Power
    { disk = 0; state = Event.Standby; start_ms = 0.0; stop_ms = 0.0; charge_ms = 0.0; energy_j = 0.0 }

let ring ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Sink.ring: capacity must be >= 1";
  K_ring { buf = Array.make capacity dummy; len = 0; next = 0; dropped = 0 }

let stream f = K_stream f

let kind = function K_null -> Null | K_ring _ -> Ring | K_stream _ -> Stream
let enabled = function K_null -> false | K_ring _ | K_stream _ -> true

let emit t e =
  match t with
  | K_null -> ()
  | K_stream f -> f e
  | K_ring r ->
      let cap = Array.length r.buf in
      r.buf.(r.next) <- e;
      r.next <- (r.next + 1) mod cap;
      if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

let events = function
  | K_null | K_stream _ -> []
  | K_ring r ->
      let cap = Array.length r.buf in
      let first = if r.len < cap then 0 else r.next in
      List.init r.len (fun i -> r.buf.((first + i) mod cap))

let length = function K_null | K_stream _ -> 0 | K_ring r -> r.len
let dropped = function K_null | K_stream _ -> 0 | K_ring r -> r.dropped
