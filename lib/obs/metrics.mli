(** A small metrics registry: counters, gauges, and histograms with
    fixed log-spaced buckets.

    Histograms are the workhorse — the per-disk idle-gap,
    response-time and standby-residency distributions are all
    instances.  Buckets are fixed at construction (no rebinning), so
    [observe] is O(#buckets) worst case and allocation-free. *)

type histogram = {
  h_name : string;
  edges : float array;
      (** ascending upper bucket edges; one extra final bucket catches
          values beyond the last edge *)
  counts : int array;  (** length [Array.length edges + 1] *)
  mutable sum : float;
  mutable n : int;
  mutable vmax : float;
}

val log_edges : ?per_decade:int -> lo:float -> hi:float -> unit -> float array
(** Log-spaced edges from [lo] to [hi] inclusive, [per_decade] (default
    1) edges per factor of 10.  [log_edges ~lo:1.0 ~hi:1e3 ()] is
    [| 1.; 10.; 100.; 1000. |]. *)

val histogram : ?edges:float array -> string -> histogram
(** Default edges: [log_edges ~lo:1.0 ~hi:1e7 ~per_decade:1 ()] —
    milliseconds from 1 ms to ~3 h. *)

val observe : histogram -> float -> unit
val mean : histogram -> float
(** 0 when empty. *)

val quantile : histogram -> float -> float
(** Upper edge of the bucket holding quantile [q] (0..1) — a
    bucket-resolution approximation; [vmax] for the overflow bucket.
    0 when empty. *)

val merge_into : dst:histogram -> histogram -> unit
(** Accumulate [src] counts into [dst]; the edge arrays must be equal. *)

val pp_histogram : Format.formatter -> histogram -> unit
(** One line per non-empty bucket: range, count, share. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type registry
(** A name-keyed collection of the three metric kinds.  Lookups create
    on first use, so instrumentation sites need no setup order. *)

val registry : unit -> registry
val counter : registry -> string -> counter
val incr : ?by:int -> counter -> unit
val gauge : registry -> string -> gauge
val set : gauge -> float -> unit
val hist : ?edges:float array -> registry -> string -> histogram
(** @raise Invalid_argument when the name is already registered as a
    different metric kind. *)

val counters : registry -> counter list
val gauges : registry -> gauge list
val histograms : registry -> histogram list
(** Sorted by name. *)

val pp : Format.formatter -> registry -> unit
