(* Distribution-shift statistics between two gap-histogram JSONL
   artifacts.  The artifacts are produced by Report.jsonl, so a tiny
   self-contained JSON reader keeps lib/obs dependency-free. *)

type hist = {
  edges : float array;
  counts : int array;
  count : int;
  sum : float;
  vmax : float;
}

type side = {
  disk : int;
  requests : int;
  busy_ms : float;
  idle_ms : float;
  standby_ms : float;
  transition_ms : float;
  energy_j : float;
  hints : int;
  faults : int;
  idle_gaps : hist;
  response : hist;
  standby_residency : hist;
}

type shift = { ks : float; emd : float }

type line_diff = {
  index : int;
  disk : int;
  gaps : shift;
  resp : shift;
  residency : shift;
  d_energy_j : float;
  d_requests : int;
  d_mean_response_ms : float;
  d_standby_share : float;
}

type report = { lines : line_diff list; max_ks : float; max_emd : float }

(* --- a minimal JSON reader, sufficient for Report.jsonl lines --- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\x00' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
               pos := !pos + 4;
               if code < 128 then Buffer.add_char b (Char.chr code)
               else Buffer.add_char b '?'
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                J_arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
        end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | _ -> parse_number () |> fun f -> J_num f
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- field extraction --- *)

let field obj name =
  match obj with
  | J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad "expected an object")

let jnum = function
  | J_num f -> f
  | J_null -> Float.nan  (* Report.jsonl writes non-finite floats as null *)
  | _ -> raise (Bad "expected a number")

let jint j = int_of_float (jnum j)

let jfloats = function
  | J_arr vs -> Array.of_list (List.map jnum vs)
  | _ -> raise (Bad "expected an array")

let jints = function
  | J_arr vs -> Array.of_list (List.map jint vs)
  | _ -> raise (Bad "expected an array")

let hist_of_json j =
  {
    edges = jfloats (field j "edges");
    counts = jints (field j "counts");
    count = jint (field j "count");
    sum = jnum (field j "sum");
    vmax = jnum (field j "max");
  }

let side_of_json j =
  {
    disk = jint (field j "disk");
    requests = jint (field j "requests");
    busy_ms = jnum (field j "busy_ms");
    idle_ms = jnum (field j "idle_ms");
    standby_ms = jnum (field j "standby_ms");
    transition_ms = jnum (field j "transition_ms");
    energy_j = jnum (field j "energy_j");
    hints = jint (field j "hints");
    faults = jint (field j "faults");
    idle_gaps = hist_of_json (field j "idle_gaps");
    response = hist_of_json (field j "response");
    standby_residency = hist_of_json (field j "standby_residency");
  }

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match side_of_json (parse_json line) with
          | side -> go (lineno + 1) (side :: acc) rest
          | exception Bad msg ->
              Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  go 1 [] lines

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
      match parse contents with
      | Ok sides -> Ok sides
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error msg -> Error msg

(* --- the statistics --- *)

let shift_of a b =
  if a.edges <> b.edges then raise (Bad "histograms bucketed on different edges");
  let nb = Array.length a.counts in
  if a.count = 0 && b.count = 0 then { ks = 0.0; emd = 0.0 }
  else if a.count = 0 || b.count = 0 then { ks = 1.0; emd = float_of_int nb }
  else begin
    let na = float_of_int a.count and nbt = float_of_int b.count in
    let ca = ref 0.0 and cb = ref 0.0 in
    let ks = ref 0.0 and emd = ref 0.0 in
    for k = 0 to nb - 1 do
      ca := !ca +. (float_of_int a.counts.(k) /. na);
      cb := !cb +. (float_of_int b.counts.(k) /. nbt);
      let d = Float.abs (!ca -. !cb) in
      if d > !ks then ks := d;
      (* Wasserstein-1 with unit distance between adjacent buckets is
         the sum of absolute CDF differences. *)
      emd := !emd +. d
    done;
    { ks = !ks; emd = !emd }
  end

let mean_of h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let standby_share s =
  let total = s.busy_ms +. s.idle_ms +. s.standby_ms +. s.transition_ms in
  if total <= 0.0 then 0.0 else s.standby_ms /. total

let diff ~a ~b =
  let la = List.length a and lb = List.length b in
  if la <> lb then
    Error (Printf.sprintf "artifacts have different line counts (%d vs %d)" la lb)
  else begin
    match
      List.mapi
        (fun index ((sa : side), (sb : side)) ->
          if sa.disk <> sb.disk then
            raise
              (Bad
                 (Printf.sprintf "line %d pairs disk %d with disk %d" index sa.disk
                    sb.disk));
          {
            index;
            disk = sa.disk;
            gaps = shift_of sa.idle_gaps sb.idle_gaps;
            resp = shift_of sa.response sb.response;
            residency = shift_of sa.standby_residency sb.standby_residency;
            d_energy_j = sb.energy_j -. sa.energy_j;
            d_requests = sb.requests - sa.requests;
            d_mean_response_ms = mean_of sb.response -. mean_of sa.response;
            d_standby_share = standby_share sb -. standby_share sa;
          })
        (List.combine a b)
    with
    | lines ->
        let max_over f =
          List.fold_left
            (fun m l -> Float.max m (Float.max (f l.gaps) (Float.max (f l.resp) (f l.residency))))
            0.0 lines
        in
        Ok { lines; max_ks = max_over (fun s -> s.ks); max_emd = max_over (fun s -> s.emd) }
    | exception Bad msg -> Error msg
  end

let exceeds ~threshold r = r.max_ks > threshold

let pp_line ppf l =
  Format.fprintf ppf
    "line %d disk %d: gaps KS %.4f EMD %.3f | resp KS %.4f EMD %.3f | standby KS %.4f \
     EMD %.3f | energy %+.1f J  resp-mean %+.3f ms  standby-share %+.4f  requests %+d"
    l.index l.disk l.gaps.ks l.gaps.emd l.resp.ks l.resp.emd l.residency.ks
    l.residency.emd l.d_energy_j l.d_mean_response_ms l.d_standby_share l.d_requests

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,max KS %.6f, max EMD %.6f over %d line(s)@]"
    (Format.pp_print_list pp_line) r.lines r.max_ks r.max_emd
    (List.length r.lines)

let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"lines\":[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"index\":%d,\"disk\":%d,\"idle_gaps\":{\"ks\":%s,\"emd\":%s},\"response\":{\"ks\":%s,\"emd\":%s},\"standby_residency\":{\"ks\":%s,\"emd\":%s},\"d_energy_j\":%s,\"d_requests\":%d,\"d_mean_response_ms\":%s,\"d_standby_share\":%s}"
           l.index l.disk (jfloat l.gaps.ks) (jfloat l.gaps.emd) (jfloat l.resp.ks)
           (jfloat l.resp.emd) (jfloat l.residency.ks) (jfloat l.residency.emd)
           (jfloat l.d_energy_j) l.d_requests (jfloat l.d_mean_response_ms)
           (jfloat l.d_standby_share)))
    r.lines;
  Buffer.add_string b
    (Printf.sprintf "],\"max_ks\":%s,\"max_emd\":%s}\n" (jfloat r.max_ks)
       (jfloat r.max_emd));
  Buffer.contents b
