(** Incremental per-disk rolling state over the typed event stream —
    the data model of the operator console.

    A {!t} attaches to a running simulation as a {!Sink.stream}
    (see {!sink}) and folds every event into fixed per-disk state:

    - the {b current power state} and its residency clock (how long the
      disk has been in it, in simulated time);
    - an {b EWMA arrival rate} over inter-arrival times;
    - {b response percentiles}, both cumulative (the same log-bucket
      histogram {!Report} builds post hoc, so end-of-run values agree
      exactly — property-tested) and over a sliding window of the most
      recent responses (what the console rows show);
    - {b energy so far}, request/hint/fault/repair/deadline counters;
    - a {b power-state track}: one byte per simulated-time epoch
      recording the state the disk spent most of that epoch in — the
      sparkline the TTY renderer draws.

    Every update is O(1) (amortized over epochs for power spans) and
    allocation-free, so a live console costs what a ring sink costs.
    When no console is attached the engine keeps its null sink and pays
    nothing — the aggregator mirrors the null-sink contract by simply
    not existing on the hot path.

    All clocks are {e simulated} time taken from event timestamps —
    never the wall clock — so the fold (and every frame rendered from
    it) is a pure function of the event stream: byte-identical across
    [--jobs] settings, machines and replays. *)

type disk_live = {
  disk : int;
  mutable state : Event.power_state;  (** current power state *)
  mutable state_since_ms : float;  (** when the current state began *)
  mutable now_ms : float;  (** the disk's own time frontier *)
  mutable energy_j : float;
  mutable busy_ms : float;
  mutable idle_ms : float;
  mutable standby_ms : float;
  mutable transition_ms : float;
  mutable requests : int;
  mutable hints : int;
  mutable faults : int;
  mutable repairs : int;
  mutable deadline_misses : int;
  mutable ewma_interarrival_ms : float;  (** 0 until two arrivals seen *)
  mutable last_arrival_ms : float;
  response_ms : Metrics.histogram;  (** cumulative, {!Report.response_edges} *)
  recent : float array;  (** sliding window of the last responses *)
  mutable recent_len : int;
  mutable recent_next : int;
}

type t

val create : ?epoch_ms:float -> ?window:int -> ?track:int -> disks:int -> unit -> t
(** [epoch_ms] (default 1000) is the simulated-time granularity of the
    power-state track and of frame emission; [window] (default 256)
    the sliding response window; [track] (default 64) the number of
    track epochs retained per disk.
    @raise Invalid_argument when [disks < 1], [epoch_ms <= 0],
    [window < 1] or [track < 1]. *)

val feed : t -> Event.t -> unit
(** Fold one event.  Events must arrive in emission order (per-disk
    chronological), as the engine produces them. *)

val sink : t -> Sink.t
(** [Sink.stream (feed t)] — what to pass as [Engine.simulate ~obs]. *)

val disks : t -> disk_live array
(** The rolling state, indexed by disk.  Read-only by convention. *)

val now_ms : t -> float
(** The global simulated-time frontier (max event time seen). *)

val events_seen : t -> int

val epoch_ms : t -> float

val epochs_completed : t -> int
(** Simulated-time epochs fully elapsed: [floor (now_ms / epoch_ms)].
    The TTY driver emits a frame whenever this advances. *)

val percentile : t -> disk:int -> float -> float
(** Cumulative response quantile (bucket upper edge) — identical to
    [Metrics.quantile] on the post-hoc {!Report}'s [response_ms] at
    end of run. *)

val recent_percentile : t -> disk:int -> float -> float
(** Exact nearest-rank percentile over the sliding window (0 when the
    disk has served nothing yet).  O(window log window): for display,
    not for the per-event path. *)

val arrival_rate_hz : t -> disk:int -> float
(** Requests per second implied by the EWMA inter-arrival time; 0
    until the disk has seen two arrivals. *)

val residency_ms : t -> disk:int -> float
(** How long the disk has been in its current power state. *)

val track_chars : t -> disk:int -> Bytes.t
(** The power-state track, oldest epoch first, one byte per epoch:
    ['A'] active, ['i'] idle, ['.'] standby, ['~'] transition, ['?']
    before any span covered the epoch.  A fresh Bytes per call — for
    rendering, not the hot path. *)
