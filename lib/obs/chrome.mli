(** Chrome [trace_event] export.

    Renders a recorded event stream as a JSON object loadable in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}: one track
    (thread) per disk whose complete-events are the power-state spans
    (ACTIVE / IDLE@rpm / STANDBY / TRANSITION), with hint executions,
    fault perturbations and policy decisions as instant markers on the
    same track.  Timestamps are microseconds, as the format requires. *)

val trace_json : ?until_ms:float -> Event.t list -> string
(** [until_ms] clips spans to the run's makespan (a trailing spin-down
    may overshoot it); spans of zero clipped length are dropped.  The
    remaining spans of each track are contiguous and sum to the
    makespan. *)

val write : ?until_ms:float -> string -> Event.t list -> unit
(** [write path events] saves {!trace_json} to [path]. *)
