(** Wall-clock-free pass profiling for the compiler pipeline.

    A global, off-by-default accumulator of named spans measured with
    [Sys.time] (CPU seconds — no extra dependency, stable under CI
    noise).  When disabled, {!span} costs one branch and a closure call;
    the compiler passes can therefore keep their hooks unconditionally.

    Usage: [Prof.enable ()], run passes, [Prof.pp_table] to print the
    per-pass timing table ([dpcc --profile]). *)

type entry = {
  p_name : string;
  mutable total_s : float;  (** accumulated CPU seconds *)
  mutable calls : int;      (** number of {!span} invocations *)
  mutable items : int;      (** optional work counter (see {!count}) *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all entries (keeps the enabled flag). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, if enabled, charges its CPU time to
    [name].  Exceptions propagate; the time is charged regardless. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the work counter of [name] (e.g. number
    of scheduler rounds), creating the entry if needed.  No-op when
    disabled. *)

val entries : unit -> entry list
(** Sorted by decreasing total time. *)

val pp_table : Format.formatter -> unit -> unit
(** The [dpcc --profile] per-pass timing table. *)
