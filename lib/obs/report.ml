type disk_report = {
  disk : int;
  idle_gap_ms : Metrics.histogram;
  response_ms : Metrics.histogram;
  standby_residency_ms : Metrics.histogram;
  mutable busy_ms : float;
  mutable idle_ms : float;
  mutable standby_ms : float;
  mutable transition_ms : float;
  mutable energy_j : float;
  mutable requests : int;
  mutable hints : int;
  mutable faults : int;
  mutable decisions : int;
  mutable repairs : int;
  mutable deadline_misses : int;
}

let gap_edges = Metrics.log_edges ~lo:1.0 ~hi:1e7 ()
let response_edges = Metrics.log_edges ~per_decade:2 ~lo:0.1 ~hi:1e5 ()

let fresh disk =
  {
    disk;
    idle_gap_ms = Metrics.histogram ~edges:gap_edges (Printf.sprintf "disk %d idle gaps (ms)" disk);
    response_ms =
      Metrics.histogram ~edges:response_edges (Printf.sprintf "disk %d response times (ms)" disk);
    standby_residency_ms =
      Metrics.histogram ~edges:gap_edges (Printf.sprintf "disk %d standby residencies (ms)" disk);
    busy_ms = 0.0;
    idle_ms = 0.0;
    standby_ms = 0.0;
    transition_ms = 0.0;
    energy_j = 0.0;
    requests = 0;
    hints = 0;
    faults = 0;
    decisions = 0;
    repairs = 0;
    deadline_misses = 0;
  }

let builder ~disks =
  if disks < 1 then invalid_arg "Report.of_events: disks must be >= 1";
  let reports = Array.init disks fresh in
  (* Per-disk open runs: start of the current non-active stretch and of
     the current standby stretch (nan = none), plus the last span end. *)
  let gap_start = Array.make disks Float.nan in
  let standby_start = Array.make disks Float.nan in
  let last_stop = Array.make disks 0.0 in
  let close_gap d upto =
    if (not (Float.is_nan gap_start.(d))) && upto > gap_start.(d) then
      Metrics.observe reports.(d).idle_gap_ms (upto -. gap_start.(d));
    gap_start.(d) <- Float.nan
  in
  let close_standby d upto =
    if (not (Float.is_nan standby_start.(d))) && upto > standby_start.(d) then
      Metrics.observe reports.(d).standby_residency_ms (upto -. standby_start.(d));
    standby_start.(d) <- Float.nan
  in
  let feed e =
    match e with
      | Event.Power p ->
          let d = p.disk in
          if d < 0 || d >= disks then invalid_arg "Report.of_events: event disk out of range";
          let r = reports.(d) in
          r.energy_j <- r.energy_j +. p.energy_j;
          (match p.state with
          | Event.Active ->
              r.busy_ms <- r.busy_ms +. p.charge_ms;
              close_gap d p.start_ms;
              close_standby d p.start_ms
          | Event.Idle _ ->
              r.idle_ms <- r.idle_ms +. p.charge_ms;
              if Float.is_nan gap_start.(d) then gap_start.(d) <- p.start_ms;
              close_standby d p.start_ms
          | Event.Standby ->
              r.standby_ms <- r.standby_ms +. p.charge_ms;
              if Float.is_nan gap_start.(d) then gap_start.(d) <- p.start_ms;
              if Float.is_nan standby_start.(d) then standby_start.(d) <- p.start_ms
          | Event.Transition ->
              r.transition_ms <- r.transition_ms +. p.charge_ms;
              if p.stop_ms > p.start_ms && Float.is_nan gap_start.(d) then
                gap_start.(d) <- p.start_ms;
              close_standby d p.start_ms);
          if p.stop_ms > last_stop.(d) then last_stop.(d) <- p.stop_ms
      | Event.Service s ->
          let r = reports.(s.disk) in
          r.requests <- r.requests + 1;
          Metrics.observe r.response_ms (s.stop_ms -. s.arrival_ms)
      | Event.Hint_exec h -> reports.(h.disk).hints <- reports.(h.disk).hints + 1
      (* Store-level fault lines (cache lock timeouts) carry disk -1:
         they belong to no disk's report. *)
      | Event.Fault f when f.disk < 0 || f.disk >= disks -> ()
      | Event.Fault f -> reports.(f.disk).faults <- reports.(f.disk).faults + 1
      | Event.Decision d -> reports.(d.disk).decisions <- reports.(d.disk).decisions + 1
      | Event.Repair r -> reports.(r.disk).repairs <- reports.(r.disk).repairs + 1
      | Event.Deadline d ->
          reports.(d.disk).deadline_misses <- reports.(d.disk).deadline_misses + 1
      (* Stage-cache events are process-level, not per-disk. *)
      | Event.Cache _ -> ()
  in
  let finish () =
    (* The trailing window never ends in a service: close open runs at
       the disk's last accounted instant. *)
    Array.iteri
      (fun d _ ->
        close_standby d last_stop.(d);
        close_gap d last_stop.(d))
      reports;
    reports
  in
  (feed, finish)

let of_events ~disks events =
  let feed, finish = builder ~disks in
  List.iter feed events;
  finish ()

let pp_one ppf r =
  Format.fprintf ppf
    "@[<v>disk %d: %d request(s), %.1f J — busy %.0f ms, idle %.0f ms, standby %.0f ms, \
     transition %.0f ms%s@,%a%a%a@]"
    r.disk r.requests r.energy_j r.busy_ms r.idle_ms r.standby_ms r.transition_ms
    (if r.hints > 0 || r.faults > 0 || r.repairs > 0 || r.deadline_misses > 0 then
       Printf.sprintf " (%d hint(s), %d fault(s), %d repair(s), %d deadline miss(es))"
         r.hints r.faults r.repairs r.deadline_misses
     else "")
    Metrics.pp_histogram r.idle_gap_ms Metrics.pp_histogram r.response_ms Metrics.pp_histogram
    r.standby_residency_ms

let pp ppf reports =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_one)
    (Array.to_list reports)

let jfloat f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let hist_json (h : Metrics.histogram) =
  let arr f xs = String.concat "," (List.map f (Array.to_list xs)) in
  Printf.sprintf "{\"edges\":[%s],\"counts\":[%s],\"count\":%d,\"sum\":%s,\"max\":%s}"
    (arr jfloat h.Metrics.edges)
    (arr string_of_int h.Metrics.counts)
    h.Metrics.n (jfloat h.Metrics.sum) (jfloat h.Metrics.vmax)

let jsonl reports =
  let b = Buffer.create 1024 in
  Array.iter
    (fun r ->
      (* Repair/deadline counters appear only when nonzero: a run
         without the persistent-failure domain keeps the exact JSONL
         bytes it produced before the domain existed. *)
      let repair_fields =
        if r.repairs > 0 || r.deadline_misses > 0 then
          Printf.sprintf ",\"repairs\":%d,\"deadline_misses\":%d" r.repairs
            r.deadline_misses
        else ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"disk\":%d,\"requests\":%d,\"busy_ms\":%s,\"idle_ms\":%s,\"standby_ms\":%s,\"transition_ms\":%s,\"energy_j\":%s,\"hints\":%d,\"faults\":%d,\"decisions\":%d%s,\"idle_gaps\":%s,\"response\":%s,\"standby_residency\":%s}\n"
           r.disk r.requests (jfloat r.busy_ms) (jfloat r.idle_ms) (jfloat r.standby_ms)
           (jfloat r.transition_ms) (jfloat r.energy_j) r.hints r.faults r.decisions
           repair_fields (hist_json r.idle_gap_ms) (hist_json r.response_ms)
           (hist_json r.standby_residency_ms)))
    reports;
  Buffer.contents b
