(** Typed observability events.

    Everything the simulator can report about a run flows through this
    one variant: power-state spans (the timeline), request service
    spans, compiler-hint executions, injected-fault perturbations, and
    policy decisions.  Events are cheap immutable records; whether any
    are constructed at all is the {!Sink}'s business — the engine guards
    every emission on {!Sink.enabled}, so a run with the null sink
    allocates nothing here. *)

type power_state =
  | Active  (** servicing a request *)
  | Idle of int  (** powered-up idle at an RPM *)
  | Standby
  | Transition  (** spin-up/down or speed change *)

type t =
  | Power of {
      disk : int;
      state : power_state;
      start_ms : float;
      stop_ms : float;  (** wall-clock span on the disk's timeline *)
      charge_ms : float;
          (** milliseconds charged to the state's statistic.  Equals
              [stop_ms -. start_ms] except for a spin-down clipped by
              the end of its gap (the engine charges only the clipped
              share) and zero-length lump charges; summing [charge_ms]
              per state reproduces the engine's per-disk stats exactly. *)
      energy_j : float;  (** energy charged to this span *)
    }
  | Service of {
      disk : int;
      proc : int;
          (** issuing processor — under {!Dp_serve} multiplexing, the
              tenant index, which is what per-tenant attribution keys on *)
      arrival_ms : float;
      start_ms : float;  (** when the head started working (spikes included) *)
      stop_ms : float;  (** completion; [stop_ms -. arrival_ms] is the response *)
      lba : int;
      bytes : int;
    }
  | Hint_exec of { disk : int; at_ms : float; action : string }
      (** a compiler directive consumed by the engine *)
  | Fault of { disk : int; at_ms : float; kind : string; cost_ms : float }
      (** an injected perturbation and the time it cost *)
  | Decision of { disk : int; at_ms : float; decision : string }
      (** a policy choice (spin down, plan a dip, window upshift, ...) *)
  | Cache of { at_ms : float; op : string; key : string; bytes : int }
      (** a persistent stage-cache operation ([op] is one of ["hit"],
          ["miss"], ["corrupt"], ["write-failure"]).  [at_ms] is wall
          clock, not simulation time; [bytes] the payload size (0 when
          unknown). *)
  | Repair of { disk : int; at_ms : float; op : string; blocks : int; cost_ms : float }
      (** a persistent-failure recovery action ([op] is one of
          ["remap"], ["scrub"], ["scrub-pass"], ["reconstruct"],
          ["failover"], ["disk-failed"], ["rebuild"],
          ["rebuild-complete"]); [blocks] the blocks involved and
          [cost_ms] the time charged on the disk's timeline *)
  | Deadline of {
      disk : int;
      proc : int;
      at_ms : float;
      response_ms : float;
      deadline_ms : float;
    }
      (** a request completed past its deadline ([proc] is the issuing
          tenant under {!Dp_serve} multiplexing) *)

val disk : t -> int
(** The event's disk; [-1] for events not bound to one ({!Cache}). *)

val time_ms : t -> float
(** The event's primary timestamp (span start for spans). *)

val state_name : power_state -> string
(** "active" | "idle" | "standby" | "transition". *)

val track_name : power_state -> string
(** Display label: "ACTIVE", "IDLE@<rpm>", "STANDBY", "TRANSITION". *)

val to_json : t -> string
(** One self-contained JSON object (no trailing newline) — the JSONL
    wire format.  Strings are escaped; non-finite floats become null. *)

val pp : Format.formatter -> t -> unit
