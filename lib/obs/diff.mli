(** Cross-run distribution-shift analysis over gap-histogram JSONL
    artifacts — the exact comparison that replaces eyeballing two
    histograms.

    An artifact is what {!Report.jsonl} writes (and [dpsim --obs gaps
    OUT], [dpcc serve --obs-jsonl], [dpcc fault-sweep --obs-jsonl]
    emit): one JSON object per disk per line, each carrying the three
    log-bucket histograms (idle gaps, response times, standby
    residencies) plus the per-disk totals.  Artifacts may concatenate
    several runs (the sweep artifact does); lines are paired
    positionally and must agree on disk id and bucket edges.

    Two statistics per distribution, both computed on the shared
    log-bucket grid:

    - {b KS}: the Kolmogorov–Smirnov statistic, the maximum absolute
      difference between the two empirical CDFs — in [0, 1], scale-free,
      what [--threshold] gates on;
    - {b EMD}: the earth-mover (Wasserstein-1) distance between the
      normalized bucket masses with unit ground distance between
      adjacent buckets — "how many buckets did the mass move", which
      for a log grid reads as decades-of-milliseconds shifted.

    A self-diff (A vs A) is exactly zero on every statistic — the CI
    gate. *)

type hist = {
  edges : float array;
  counts : int array;
  count : int;
  sum : float;
  vmax : float;
}

(** One artifact line (one disk of one run). *)
type side = {
  disk : int;
  requests : int;
  busy_ms : float;
  idle_ms : float;
  standby_ms : float;
  transition_ms : float;
  energy_j : float;
  hints : int;
  faults : int;
  idle_gaps : hist;
  response : hist;
  standby_residency : hist;
}

type shift = { ks : float; emd : float }

type line_diff = {
  index : int;  (** artifact line number, 0-based *)
  disk : int;
  gaps : shift;
  resp : shift;
  residency : shift;
  d_energy_j : float;  (** B − A throughout *)
  d_requests : int;
  d_mean_response_ms : float;
  d_standby_share : float;
      (** delta of standby_ms over total accounted time, in [-1, 1] *)
}

type report = {
  lines : line_diff list;
  max_ks : float;  (** worst KS across every line and distribution *)
  max_emd : float;
}

val parse : string -> (side list, string) result
(** Parse artifact contents (one JSON object per line; blank lines
    ignored).  Errors name the line and what was wrong. *)

val load : string -> (side list, string) result
(** [parse] of a file's contents; [Error] on unreadable paths too. *)

val diff : a:side list -> b:side list -> (report, string) result
(** Pair lines positionally.  [Error] when the artifacts have
    different line counts, a pair disagrees on disk id, or paired
    histograms were bucketed on different edges. *)

val shift_of : hist -> hist -> shift
(** The KS/EMD core, exposed for tests.  Histograms must share edges.
    Two empty histograms are zero shift; empty-vs-nonempty is maximal
    ([ks = 1], [emd] = bucket count). *)

val exceeds : threshold:float -> report -> bool
(** [max_ks > threshold] — the [dpcc obs diff --threshold] gate. *)

val pp : Format.formatter -> report -> unit
(** The human table: one line per artifact line, sign-aware deltas
    ([+]/[-] always printed), maxima last. *)

val to_json : report -> string
(** One JSON object (trailing newline included): ["lines"] array plus
    ["max_ks"]/["max_emd"] — what CI asserts zeros on. *)
