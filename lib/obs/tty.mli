(** Terminal rendering of a {!Live} aggregator — the operator console
    behind [dpsim --live] and [dpcc serve --live].

    No dependencies beyond ANSI escape sequences: in {!Ansi} mode each
    frame homes the cursor and repaints in place (one row per disk plus
    a header, each line clearing its tail), so the console looks like a
    dashboard; in {!Plain} mode each frame is an ordinary text block
    with a timestamp header — what you get when stdout is not a tty or
    the frames are being captured into a buffer.

    Frames are pure functions of the {!Live} state, which is itself a
    pure function of the event stream in simulated time — so the byte
    stream a driver produces is identical across [--jobs] settings,
    machines and replays.  Nothing here reads a clock. *)

type mode = Ansi | Plain

val frame : mode:mode -> Live.t -> string
(** Render one frame of the current state: a header line (simulated
    time, epoch count, events folded) and one fixed-width row per disk
    — power state, residency, EWMA arrival rate, sliding-window
    p50/p95 response, energy so far, request and fault/repair/deadline
    counters, and the power-state sparkline track ({!Live.track_chars}
    bytes: ['A'] active, ['i'] idle, ['.'] standby, ['~'] transition). *)

val driver :
  ?mode:mode -> out:(string -> unit) -> Live.t -> (Event.t -> unit) * (unit -> unit)
(** [driver ?mode ~out live] returns [(feed, finish)].  [feed] folds an
    event into [live] and hands [out] one frame each time
    {!Live.epochs_completed} advances (a single frame however many
    epochs the event skipped); [finish] emits one final frame for the
    trailing partial epoch.  Compose [feed] with
    other consumers inside a single {!Sink.stream} callback.  [mode]
    defaults to {!Plain}. *)
