(** Per-disk analytics derived from a recorded event stream — the
    paper's idle-time-distribution analysis as a first-class report.

    Built from {!Sink.events} of a ring sink after a simulation:

    - {b idle gaps}: contiguous non-servicing stretches (idle + standby
      + transition time between two services) — the quantity every
      power-management policy in the paper feeds on;
    - {b response times}: per-request [completion - arrival];
    - {b standby residencies}: lengths of contiguous standby stays —
      how much of the spun-down time actually amortizes a spin-down.

    All three are log-bucket {!Metrics.histogram}s, so the report is
    bounded regardless of trace size. *)

type disk_report = {
  disk : int;
  idle_gap_ms : Metrics.histogram;
  response_ms : Metrics.histogram;
  standby_residency_ms : Metrics.histogram;
  mutable busy_ms : float;
  mutable idle_ms : float;
  mutable standby_ms : float;
  mutable transition_ms : float;
  mutable energy_j : float;
  mutable requests : int;
  mutable hints : int;
  mutable faults : int;
  mutable decisions : int;
  mutable repairs : int;  (** recovery actions (remap/scrub/rebuild/...) *)
  mutable deadline_misses : int;
}

val of_events : disks:int -> Event.t list -> disk_report array
(** Events must be per-disk chronological (as emitted by the engine). *)

val pp : Format.formatter -> disk_report array -> unit
(** The [dpsim --obs gaps] report: per-disk totals and the three
    histograms. *)

val jsonl : disk_report array -> string
(** One JSON object per disk per line (the gap-histogram JSONL
    artifact). *)
