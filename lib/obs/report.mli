(** Per-disk analytics derived from a recorded event stream — the
    paper's idle-time-distribution analysis as a first-class report.

    Built from {!Sink.events} of a ring sink after a simulation:

    - {b idle gaps}: contiguous non-servicing stretches (idle + standby
      + transition time between two services) — the quantity every
      power-management policy in the paper feeds on;
    - {b response times}: per-request [completion - arrival];
    - {b standby residencies}: lengths of contiguous standby stays —
      how much of the spun-down time actually amortizes a spin-down.

    All three are log-bucket {!Metrics.histogram}s, so the report is
    bounded regardless of trace size. *)

type disk_report = {
  disk : int;
  idle_gap_ms : Metrics.histogram;
  response_ms : Metrics.histogram;
  standby_residency_ms : Metrics.histogram;
  mutable busy_ms : float;
  mutable idle_ms : float;
  mutable standby_ms : float;
  mutable transition_ms : float;
  mutable energy_j : float;
  mutable requests : int;
  mutable hints : int;
  mutable faults : int;
  mutable decisions : int;
  mutable repairs : int;  (** recovery actions (remap/scrub/rebuild/...) *)
  mutable deadline_misses : int;
}

val gap_edges : float array
(** The log-bucket edges of the idle-gap and standby-residency
    histograms (1 ms .. 10⁷ ms, one edge per decade) — shared with
    {!Live} so rolling and post-hoc distributions are comparable
    bucket for bucket. *)

val response_edges : float array
(** The response-time edges (0.1 ms .. 10⁵ ms, two per decade). *)

val of_events : disks:int -> Event.t list -> disk_report array
(** Events must be per-disk chronological (as emitted by the engine).
    Process-level events that belong to no disk — [Cache] lines, and
    [Fault] lines with disk [-1] (a store's lock-timeout report) — are
    skipped rather than counted against any disk. *)

val builder : disks:int -> (Event.t -> unit) * (unit -> disk_report array)
(** The incremental form of {!of_events}: a feed function to call on
    every event (in emission order) and a finisher that closes the
    trailing idle/standby runs and returns the reports.  Feeding after
    the finisher has run is undefined; call the finisher once.
    [of_events ~disks es] is [let feed, fin = builder ~disks in
    List.iter feed es; fin ()].  This is what lets a {!Sink.Stream}
    consumer (the served-array rows, the live console) produce the
    same gap-histogram artifact a ring sink would, without retaining
    the events. *)

val pp : Format.formatter -> disk_report array -> unit
(** The [dpsim --obs gaps] report: per-disk totals and the three
    histograms. *)

val jsonl : disk_report array -> string
(** One JSON object per disk per line (the gap-histogram JSONL
    artifact). *)
