type status = Good | Bad | Remapped

(* One byte per surface block: the default surface is 64 Ki blocks, so a
   per-disk map costs 64 KB — cheap enough to keep exact. *)
type t = { cells : Bytes.t; mutable bad : int; mutable remapped : int }

let good_c = '\000'
let bad_c = '\001'
let remapped_c = '\002'

let make ~blocks =
  if blocks < 1 then invalid_arg "Badmap.make: blocks must be >= 1";
  { cells = Bytes.make blocks good_c; bad = 0; remapped = 0 }

let blocks t = Bytes.length t.cells

let status t i =
  match Bytes.get t.cells i with
  | c when c = good_c -> Good
  | c when c = bad_c -> Bad
  | _ -> Remapped

let set_bad t i =
  if Bytes.get t.cells i = good_c then begin
    Bytes.set t.cells i bad_c;
    t.bad <- t.bad + 1;
    true
  end
  else false

let set_remapped t i =
  match Bytes.get t.cells i with
  | c when c = bad_c ->
      Bytes.set t.cells i remapped_c;
      t.bad <- t.bad - 1;
      t.remapped <- t.remapped + 1
  | _ -> invalid_arg "Badmap.set_remapped: block is not bad"

let bad_count t = t.bad
let remapped_count t = t.remapped

let clear t =
  Bytes.fill t.cells 0 (Bytes.length t.cells) good_c;
  t.bad <- 0;
  t.remapped <- 0

(* Fingerprint of the full map (FNV-1a over the cells): what the
   cross-domain determinism property compares. *)
let digest t =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    t.cells;
  !h
