module Fault_model = Dp_faults.Fault_model

type config = {
  surface_blocks : int;
  block_bytes : int;
  scrub_budget_ms : float;
  scrub_chunk_blocks : int;
  rebuild_chunk_blocks : int;
  rebuild_blocks : int;
  fail_threshold : int;
}

let config ?(surface_blocks = 65_536) ?(block_bytes = 4096) ?(scrub_budget_ms = 0.0)
    ?(scrub_chunk_blocks = 64) ?(rebuild_chunk_blocks = 256) ?rebuild_blocks
    ?(fail_threshold = 64) () =
  (* Diagnostics echo the offending value: a knob threaded through
     several CLI layers is much easier to trace back when the message
     shows what actually arrived. *)
  let badi field got =
    invalid_arg (Printf.sprintf "Repair.config: %s must be >= 1 (got %d)" field got)
  in
  if surface_blocks < 1 then badi "surface_blocks" surface_blocks;
  if block_bytes < 1 then badi "block_bytes" block_bytes;
  if scrub_budget_ms < 0.0 then
    invalid_arg
      (Printf.sprintf "Repair.config: scrub_budget_ms must be >= 0 (got %g)" scrub_budget_ms);
  if scrub_chunk_blocks < 1 then badi "scrub_chunk_blocks" scrub_chunk_blocks;
  if rebuild_chunk_blocks < 1 then badi "rebuild_chunk_blocks" rebuild_chunk_blocks;
  let rebuild_blocks = Option.value rebuild_blocks ~default:surface_blocks in
  if rebuild_blocks < 1 then badi "rebuild_blocks" rebuild_blocks;
  if fail_threshold < 1 then badi "fail_threshold" fail_threshold;
  {
    surface_blocks;
    block_bytes;
    scrub_budget_ms;
    scrub_chunk_blocks;
    rebuild_chunk_blocks;
    rebuild_blocks;
    fail_threshold;
  }

let default = config ()

type counters = {
  remaps : int;
  penalty_hits : int;
  scrub_chunks : int;
  scrub_found : int;
  scrub_passes : int;
  reconstructions : int;
  rebuild_chunks : int;
  failovers : int;
  failures : int;
  rebuilds : int;
}

let zero_counters =
  {
    remaps = 0;
    penalty_hits = 0;
    scrub_chunks = 0;
    scrub_found = 0;
    scrub_passes = 0;
    reconstructions = 0;
    rebuild_chunks = 0;
    failovers = 0;
    failures = 0;
    rebuilds = 0;
  }

(* The mutable per-disk repair state: the bad-sector map of the current
   platters, spare-pool consumption, the scrub cursor, and — once the
   slot has failed — rebuild progress onto the hot spare. *)
type media = {
  map : Badmap.t;
  mutable grown : int;  (* defects ever grown on the current platters *)
  mutable spare_used : int;
  mutable exhausted : bool;  (* a bad block could not be remapped: no spare left *)
  mutable failed : bool;
  mutable rebuilt : int;  (* blocks copied onto the hot spare so far *)
  mutable cursor : int;  (* next scrub position *)
  mutable c : counters;
}

type t = { cfg : config; disks : int; media : media array }

let make cfg ~disks =
  if disks < 1 then
    invalid_arg (Printf.sprintf "Repair.make: disks must be >= 1 (got %d)" disks);
  {
    cfg;
    disks;
    media =
      Array.init disks (fun _ ->
          {
            map = Badmap.make ~blocks:cfg.surface_blocks;
            grown = 0;
            spare_used = 0;
            exhausted = false;
            failed = false;
            rebuilt = 0;
            cursor = 0;
            c = zero_counters;
          });
  }

let cfg t = t.cfg
let counters t d = t.media.(d).c
let is_failed t d = t.media.(d).failed
let grown t d = t.media.(d).grown
let spare_used t d = t.media.(d).spare_used
let map_digest t d = Badmap.digest t.media.(d).map

(* Mirror pairing: even disks pair with their odd neighbor (0-1, 2-3,
   ...); an unpaired trailing disk mirrors onto its predecessor.  A
   single-disk array has no mirror, so its disks can never fail — they
   keep serving with remap penalties instead. *)
let mirror_of t d =
  if t.disks < 2 then None
  else begin
    let m = d lxor 1 in
    Some (if m >= t.disks then d - 1 else m)
  end

let grow t ~disk ~block =
  let m = t.media.(disk) in
  if (not m.failed) && Badmap.set_bad m.map block then m.grown <- m.grown + 1

let remap m =
  m.spare_used <- m.spare_used + 1;
  m.c <- { m.c with remaps = m.c.remaps + 1 }

type touch = { remapped : int; penalty_hits : int }

(* Foreground access over [lba, lba + bytes): remap every bad block on
   first touch (while spares last), count the detour penalty for every
   already-remapped block. *)
let touch t ~disk ~spare ~lba ~bytes =
  let m = t.media.(disk) in
  let bb = t.cfg.block_bytes in
  let lo = lba / bb and hi = (lba + max bytes 1 - 1) / bb in
  let count = min (hi - lo + 1) t.cfg.surface_blocks in
  let remapped = ref 0 and hits = ref 0 in
  for k = 0 to count - 1 do
    let i = (lo + k) mod t.cfg.surface_blocks in
    match Badmap.status m.map i with
    | Badmap.Good -> ()
    | Badmap.Remapped -> incr hits
    | Badmap.Bad ->
        if m.spare_used < spare then begin
          Badmap.set_remapped m.map i;
          remap m;
          incr remapped
        end
        else m.exhausted <- true
  done;
  m.c <- { m.c with penalty_hits = m.c.penalty_hits + !hits };
  { remapped = !remapped; penalty_hits = !hits }

(* Failure policy: a slot is retired when its platters have grown past
   the defect threshold or a bad block could not be remapped any more —
   but only while its mirror is healthy (degraded reads need somewhere
   to go), so two paired disks can never be down at once. *)
let should_fail t ~disk =
  let m = t.media.(disk) in
  (not m.failed)
  && (m.grown >= t.cfg.fail_threshold || m.exhausted)
  && (match mirror_of t disk with Some p -> not t.media.(p).failed | None -> false)

let mark_failed t ~disk =
  let m = t.media.(disk) in
  m.failed <- true;
  m.rebuilt <- 0;
  (* The hot spare brings fresh platters: the old map (and its grown
     defects) leaves with the failed drive. *)
  Badmap.clear m.map;
  m.grown <- 0;
  m.spare_used <- 0;
  m.exhausted <- false;
  m.cursor <- 0;
  m.c <- { m.c with failures = m.c.failures + 1 }

(* One scrub chunk, split into a pure peek (so the engine can price the
   verification read plus any remaps before committing) and the commit
   that performs them.  A chunk never spans the surface wrap, so pass
   accounting stays exact. *)
let scrub_peek t ~disk ~spare =
  let m = t.media.(disk) in
  let chunk = min t.cfg.scrub_chunk_blocks (t.cfg.surface_blocks - m.cursor) in
  let found = ref 0 in
  let left = ref (max 0 (spare - m.spare_used)) in
  for k = 0 to chunk - 1 do
    if Badmap.status m.map (m.cursor + k) = Badmap.Bad && !left > 0 then begin
      incr found;
      decr left
    end
  done;
  (chunk, !found)

let scrub_commit t ~disk ~spare =
  let m = t.media.(disk) in
  let chunk = min t.cfg.scrub_chunk_blocks (t.cfg.surface_blocks - m.cursor) in
  let found = ref 0 in
  for k = 0 to chunk - 1 do
    let i = m.cursor + k in
    if Badmap.status m.map i = Badmap.Bad && m.spare_used < spare then begin
      Badmap.set_remapped m.map i;
      remap m;
      incr found
    end
  done;
  m.cursor <- m.cursor + chunk;
  let pass_done = m.cursor >= t.cfg.surface_blocks in
  if pass_done then m.cursor <- 0;
  m.c <-
    {
      m.c with
      scrub_chunks = m.c.scrub_chunks + 1;
      scrub_found = m.c.scrub_found + !found;
      scrub_passes = (m.c.scrub_passes + if pass_done then 1 else 0);
    };
  (!found, pass_done)

let note_reconstruction t ~disk =
  let m = t.media.(disk) in
  m.c <- { m.c with reconstructions = m.c.reconstructions + 1 }

let note_failover t ~disk =
  let m = t.media.(disk) in
  m.c <- { m.c with failovers = m.c.failovers + 1 }

(* One rebuild slice: [blocks] more blocks copied mirror -> hot spare.
   Completing the copy restores the slot to healthy service. *)
let rebuild_step t ~disk ~blocks =
  let m = t.media.(disk) in
  if not m.failed then invalid_arg "Repair.rebuild_step: disk is not failed";
  m.rebuilt <- m.rebuilt + blocks;
  m.c <- { m.c with rebuild_chunks = m.c.rebuild_chunks + 1 };
  let done_ = m.rebuilt >= t.cfg.rebuild_blocks in
  if done_ then begin
    m.failed <- false;
    m.c <- { m.c with rebuilds = m.c.rebuilds + 1 }
  end;
  done_

let pp_config ppf c =
  Format.fprintf ppf
    "repair: surface %d x %d B blocks, scrub %g ms/gap (%d-block chunks), rebuild %d \
     blocks (%d-block slices), fail threshold %d defects"
    c.surface_blocks c.block_bytes c.scrub_budget_ms c.scrub_chunk_blocks c.rebuild_blocks
    c.rebuild_chunk_blocks c.fail_threshold
