(** The per-disk bad-sector map: one exact status cell per surface
    block.

    Media decay (see {!Dp_faults.Fault_model.Media_decay}) grows [Bad]
    cells; the first foreground or scrub touch of a bad block remaps it
    to the disk's spare pool ([Remapped]), after which every access pays
    the remap detour penalty but the data is safe.  The map is the
    persistent state the transient fault classes never had. *)

type status = Good | Bad | Remapped
type t

val make : blocks:int -> t
(** All-[Good] map over a surface of [blocks] blocks.
    @raise Invalid_argument when [blocks < 1]. *)

val blocks : t -> int
val status : t -> int -> status

val set_bad : t -> int -> bool
(** Grow a defect: [Good] becomes [Bad] (returns [true]); a block
    already [Bad] or [Remapped] is left alone (returns [false]). *)

val set_remapped : t -> int -> unit
(** Remap a [Bad] block to a spare.
    @raise Invalid_argument when the block is not [Bad]. *)

val bad_count : t -> int
(** Currently-bad (grown, not yet remapped) blocks. *)

val remapped_count : t -> int

val clear : t -> unit
(** Reset every cell to [Good] — the platter swap of a hot-spare
    replacement. *)

val digest : t -> int64
(** Order-sensitive fingerprint of the whole map (FNV-1a), for
    determinism checks. *)
