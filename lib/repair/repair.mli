(** The persistent-failure domain: grown bad sectors, spare-pool
    remapping, background scrubbing, whole-disk failure and hot-spare
    rebuild.

    This module holds the {e state machine} only — which blocks are bad,
    how much spare pool is left, where the scrub cursor stands, whether
    a slot is failed and how far its rebuild has progressed.  All
    charging (time, energy, timeline spans) stays in
    {!Dp_disksim.Engine}, which consults this state and prices each
    recovery action on the owning disk's own timeline:

    - {b remap} (first touch of a bad block): an extra seek + one spare
      block write, after which the block is [Remapped] — the cost shape
      of arXiv 1908.01167;
    - {b remapped access}: every later access to a remapped block pays
      the detour penalty ({!Dp_disksim.Disk_model.t.remap_penalty_ms});
    - {b scrub}: low-priority verification reads over idle windows,
      bounded by a per-gap budget and preempted by foreground arrivals;
    - {b failure}: when grown defects cross the threshold (or the spare
      pool runs dry), the slot is retired — reads are reconstructed from
      its mirror while a rebuild stream copies onto the hot spare;
    - {b rebuild completion} restores the slot to healthy service.

    All state is deterministic given the injector's decay stream, so
    runs are byte-identical across [--jobs] widths. *)

type config = {
  surface_blocks : int;  (** bad-sector map span per disk *)
  block_bytes : int;  (** remap granularity *)
  scrub_budget_ms : float;  (** scrub time carved from each idle gap; 0 disables *)
  scrub_chunk_blocks : int;  (** blocks verified per scrub read *)
  rebuild_chunk_blocks : int;  (** blocks copied per rebuild slice *)
  rebuild_blocks : int;  (** blocks to copy before a failed slot is restored *)
  fail_threshold : int;  (** grown defects that retire a disk *)
}

val config :
  ?surface_blocks:int ->
  ?block_bytes:int ->
  ?scrub_budget_ms:float ->
  ?scrub_chunk_blocks:int ->
  ?rebuild_chunk_blocks:int ->
  ?rebuild_blocks:int ->
  ?fail_threshold:int ->
  unit ->
  config
(** Defaults: a 64 Ki-block surface of 4 KiB blocks (256 MiB of mapped
    address space), scrubbing {e off}, 64-block scrub chunks, 256-block
    rebuild slices, [rebuild_blocks = surface_blocks], failure at 64
    grown defects.  @raise Invalid_argument on a non-positive size or a
    negative budget. *)

val default : config
(** [config ()] — the configuration the engine arms automatically when
    a fault spec enables media decay.  Scrub is off by default, so a
    rate-0 decay run stays byte-identical to a clean one. *)

type counters = {
  remaps : int;  (** bad blocks remapped to spares (foreground + scrub) *)
  penalty_hits : int;  (** accesses that paid the remapped-block detour *)
  scrub_chunks : int;
  scrub_found : int;  (** bad blocks found (and remapped) by the scrubber *)
  scrub_passes : int;  (** full-surface scrub sweeps completed *)
  reconstructions : int;  (** reads served from this disk for a failed peer *)
  rebuild_chunks : int;
  failovers : int;  (** deadline-abandoned requests failed over to the mirror *)
  failures : int;  (** times this slot was retired *)
  rebuilds : int;  (** rebuilds completed (slot restored) *)
}

val zero_counters : counters

type t

val make : config -> disks:int -> t
(** @raise Invalid_argument when [disks < 1]. *)

val cfg : t -> config
val counters : t -> int -> counters
val is_failed : t -> int -> bool
val grown : t -> int -> int
val spare_used : t -> int -> int

val map_digest : t -> int -> int64
(** {!Badmap.digest} of one disk's map — the decay-state fingerprint the
    cross-domain determinism property compares. *)

val mirror_of : t -> int -> int option
(** The disk holding [d]'s replica: its even/odd neighbor, or the
    predecessor for an unpaired trailing disk.  [None] on a single-disk
    array (which therefore can never enter degraded mode). *)

val grow : t -> disk:int -> block:int -> unit
(** A decay defect at [block] (no-op while the slot is failed, or when
    the block is already bad/remapped). *)

type touch = { remapped : int; penalty_hits : int }

val touch : t -> disk:int -> spare:int -> lba:int -> bytes:int -> touch
(** Foreground access over [[lba, lba + bytes)]: remaps every bad block
    in range on first touch while the [spare] pool lasts (marking the
    pool exhausted otherwise), and counts the accesses to
    already-remapped blocks.  The engine charges [remapped] remap writes
    and [penalty_hits] detour penalties. *)

val should_fail : t -> disk:int -> bool
(** The slot must be retired now: defects past the threshold or spares
    exhausted — and its mirror is healthy (paired disks are never both
    down; a mirror-less array never fails). *)

val mark_failed : t -> disk:int -> unit
(** Retire the slot onto its hot spare: fresh (clear) map, spare pool
    and scrub cursor; rebuild starts at zero. *)

val scrub_peek : t -> disk:int -> spare:int -> int * int
(** [(chunk_blocks, bad_found)] for the next scrub chunk at the cursor —
    pure, so the engine can price the chunk read plus [bad_found] remaps
    and only commit when they fit the gap's scrub budget.  [bad_found]
    is capped by the remaining spare pool. *)

val scrub_commit : t -> disk:int -> spare:int -> int * bool
(** Perform the peeked chunk: remap what was found, advance the cursor.
    [(found, pass_completed)]. *)

val note_reconstruction : t -> disk:int -> unit
val note_failover : t -> disk:int -> unit

val rebuild_step : t -> disk:int -> blocks:int -> bool
(** Account one rebuild slice; [true] when the copy is complete and the
    slot is restored to healthy service.
    @raise Invalid_argument when the disk is not failed. *)

val pp_config : Format.formatter -> config -> unit
