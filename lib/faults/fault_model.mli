(** Configuration of the deterministic fault injector.

    The paper's evaluation assumes a fault-free array: every spin-up
    succeeds, every RPM transition completes, every request is served on
    the first attempt.  Real disks misbehave in exactly the places the
    power policies stress — start-stop cycling and speed transitions —
    so the simulator can perturb a run with five fault classes, each
    driven by its own seeded random stream (see {!Injector}):

    - {b spin-up failures}: a standby disk needs extra attempts, each
      costing a full spin-up in time and energy, before reaching speed;
    - {b transient media errors}: a request is re-serviced after a
      bounded exponential backoff;
    - {b latency spikes}: a servo recalibration stalls the head before
      the transfer;
    - {b stuck RPM}: a multi-speed disk refuses speed transitions for a
      window and serves degraded at its current level;
    - {b media decay}: {e persistent} damage — each service can grow a
      bad sector on the disk's surface that stays bad until remapped to
      a spare (see {!Dp_repair.Repair}); unlike the transient classes,
      decay accumulates state across requests. *)

type class_ = Spin_up_failure | Media_error | Latency_spike | Stuck_rpm | Media_decay

val all_classes : class_ list
val class_name : class_ -> string

type t = {
  seed : int;  (** root of every injector stream *)
  rate : float;  (** per-event fault probability in [0, 1] *)
  classes : class_ list;  (** enabled fault classes *)
  spike_ms : float;  (** servo recalibration stall length *)
  stuck_window_ms : float;  (** how long a stuck-RPM fault pins the speed *)
}

val make :
  ?classes:class_ list ->
  ?spike_ms:float ->
  ?stuck_window_ms:float ->
  seed:int ->
  rate:float ->
  unit ->
  t
(** Defaults: all classes, 120 ms spikes, 30 s stuck windows.  A negative
    [rate] or one above 1 is clamped into [0, 1]. *)

val of_spec : string -> (t, string) result
(** Parse a [seed:rate:classes] CLI spec, e.g. ["42:0.01:all"] or
    ["7:0.05:sm"].  Classes are a subset of the letters [s] (spin-up),
    [m] (media), [l] (latency spike), [r] (stuck RPM), [d] (media
    decay), or the word [all].  A duplicated class letter or a negative
    seed is rejected; the error names the offending field. *)

val to_spec : t -> string
(** Round-trips through {!of_spec} (spike/window lengths keep their
    defaults). *)

val pp : Format.formatter -> t -> unit
