type class_ = Spin_up_failure | Media_error | Latency_spike | Stuck_rpm | Media_decay

let all_classes = [ Spin_up_failure; Media_error; Latency_spike; Stuck_rpm; Media_decay ]

let class_name = function
  | Spin_up_failure -> "spin-up"
  | Media_error -> "media"
  | Latency_spike -> "spike"
  | Stuck_rpm -> "stuck-rpm"
  | Media_decay -> "media-decay"

let class_letter = function
  | Spin_up_failure -> 's'
  | Media_error -> 'm'
  | Latency_spike -> 'l'
  | Stuck_rpm -> 'r'
  | Media_decay -> 'd'

type t = {
  seed : int;
  rate : float;
  classes : class_ list;
  spike_ms : float;
  stuck_window_ms : float;
}

let make ?(classes = all_classes) ?(spike_ms = 120.0) ?(stuck_window_ms = 30_000.0) ~seed
    ~rate () =
  { seed; rate = Float.min 1.0 (Float.max 0.0 rate); classes; spike_ms; stuck_window_ms }

let classes_of_string s =
  if s = "all" || s = "" then Ok all_classes
  else begin
    let rec go i acc =
      if i >= String.length s then Ok (List.rev acc)
      else
        match List.find_opt (fun c -> class_letter c = s.[i]) all_classes with
        | Some c ->
            if List.mem c acc then
              Error
                (Printf.sprintf "duplicate fault class %C in %S (each letter at most once)"
                   s.[i] s)
            else go (i + 1) (c :: acc)
        | None ->
            Error
              (Printf.sprintf
                 "bad fault class %C in %S (expected letters from \"smlrd\" or \"all\")"
                 s.[i] s)
    in
    go 0 []
  end

let of_spec spec =
  match String.split_on_char ':' (String.trim spec) with
  | [ seed; rate; classes ] -> begin
      match int_of_string_opt seed with
      | None -> Error (Printf.sprintf "bad fault seed %S (expected an integer)" seed)
      | Some s when s < 0 ->
          Error (Printf.sprintf "bad fault seed %S (expected a non-negative integer)" seed)
      | Some seed -> begin
          match float_of_string_opt rate with
          | None -> Error (Printf.sprintf "bad fault rate %S (expected a float)" rate)
          | Some r when r < 0.0 || r > 1.0 ->
              Error (Printf.sprintf "bad fault rate %S (expected within [0, 1])" rate)
          | Some rate -> begin
              match classes_of_string classes with
              | Ok classes -> Ok (make ~classes ~seed ~rate ())
              | Error _ as e -> e
            end
        end
    end
  | _ -> Error (Printf.sprintf "bad fault spec %S (expected seed:rate:classes)" spec)

let to_spec t =
  let classes =
    if t.classes = all_classes then "all"
    else String.init (List.length t.classes) (fun i -> class_letter (List.nth t.classes i))
  in
  Printf.sprintf "%d:%g:%s" t.seed t.rate classes

let pp ppf t =
  Format.fprintf ppf "faults seed %d, rate %g, classes {%s}" t.seed t.rate
    (String.concat ", " (List.map class_name t.classes))
