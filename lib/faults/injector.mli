(** The deterministic fault injector.

    One injector carries an independent {!Dp_util.Splitmix} stream per
    disk {e and} per fault class, so the number of draws one class makes
    never shifts another class's schedule, and two runs with the same
    {!Fault_model.t} see identical faults.  All queries are cheap; the
    only mutable cross-query state is the per-disk stuck-RPM lock
    window. *)

type t

val make : Fault_model.t -> disks:int -> t
val config : t -> Fault_model.t

val spin_up_failures : t -> disk:int -> max_failures:int -> int
(** Number of spin-up attempts that fail (each costs a full spin-up)
    before the one that succeeds: geometric in the fault rate, bounded
    by [max_failures].  0 when the class is disabled. *)

val media_retries : t -> disk:int -> max_retries:int -> int
(** Number of times one request must be re-serviced: geometric in the
    fault rate, bounded by [max_retries].  0 when the class is
    disabled. *)

val latency_spike_ms : t -> disk:int -> float
(** A servo-recalibration stall for the request being served: the
    configured spike length with probability [rate], else 0. *)

val decay_defect : t -> disk:int -> surface:int -> int option
(** One media-decay draw for a service on [disk]: with probability
    [rate], the block index (uniform in [0, surface)) where a new bad
    sector grows; [None] otherwise, or when the class is disabled.  The
    draw comes from the decay class's own stream, so arming decay never
    shifts another class's schedule — and at rate 0 no draw is consumed
    at all, keeping the run byte-identical to a clean one.
    @raise Invalid_argument when [surface < 1]. *)

val rpm_locked : t -> disk:int -> now_ms:float -> bool
(** Consult-and-maybe-trigger, called when a policy {e attempts} a speed
    transition: [true] when the disk is inside a stuck window, or when a
    fresh stuck fault fires now (which opens a window of the configured
    length).  The transition must then be skipped. *)

val is_locked : t -> disk:int -> now_ms:float -> bool
(** Pure read of the lock state — never triggers a fault.  Used for
    degraded-time accounting. *)
