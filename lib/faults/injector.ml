module Splitmix = Dp_util.Splitmix

type t = {
  cfg : Fault_model.t;
  spin : Splitmix.t array;
  media : Splitmix.t array;
  spike : Splitmix.t array;
  stuck : Splitmix.t array;
  decay : Splitmix.t array;
  stuck_until : float array;  (* per-disk lock expiry, -inf when unlocked *)
}

(* Split order is fixed (class-major, then disk) so a given seed names
   the same stream family regardless of which queries run first. *)
let make cfg ~disks =
  if disks < 1 then invalid_arg "Injector.make: disks must be >= 1";
  let root = Splitmix.create cfg.Fault_model.seed in
  let per_class () =
    let class_root = Splitmix.split root in
    let a = Array.make disks class_root in
    for d = 0 to disks - 1 do
      a.(d) <- Splitmix.split class_root
    done;
    a
  in
  let spin = per_class () in
  let media = per_class () in
  let spike = per_class () in
  let stuck = per_class () in
  (* The decay stream was added after the first four: splitting it last
     keeps every pre-existing stream family byte-identical for a given
     seed. *)
  let decay = per_class () in
  { cfg; spin; media; spike; stuck; decay; stuck_until = Array.make disks neg_infinity }

let config t = t.cfg

let enabled t c = List.mem c t.cfg.Fault_model.classes

(* Failures before the first success of a Bernoulli(1 - rate) trial,
   truncated at [max]. *)
let geometric rng ~p ~max =
  let rec go n = if n >= max then n else if Splitmix.bool rng ~p then go (n + 1) else n in
  go 0

let spin_up_failures t ~disk ~max_failures =
  if not (enabled t Fault_model.Spin_up_failure) then 0
  else geometric t.spin.(disk) ~p:t.cfg.Fault_model.rate ~max:(Stdlib.max 0 max_failures)

let media_retries t ~disk ~max_retries =
  if not (enabled t Fault_model.Media_error) then 0
  else geometric t.media.(disk) ~p:t.cfg.Fault_model.rate ~max:(Stdlib.max 0 max_retries)

let latency_spike_ms t ~disk =
  if enabled t Fault_model.Latency_spike && Splitmix.bool t.spike.(disk) ~p:t.cfg.Fault_model.rate
  then t.cfg.Fault_model.spike_ms
  else 0.0

let decay_defect t ~disk ~surface =
  if surface < 1 then invalid_arg "Injector.decay_defect: surface must be >= 1";
  if
    enabled t Fault_model.Media_decay
    && Splitmix.bool t.decay.(disk) ~p:t.cfg.Fault_model.rate
  then Some (Splitmix.int t.decay.(disk) ~bound:surface)
  else None

let is_locked t ~disk ~now_ms =
  enabled t Fault_model.Stuck_rpm && now_ms < t.stuck_until.(disk)

let rpm_locked t ~disk ~now_ms =
  if not (enabled t Fault_model.Stuck_rpm) then false
  else if now_ms < t.stuck_until.(disk) then true
  else if Splitmix.bool t.stuck.(disk) ~p:t.cfg.Fault_model.rate then begin
    t.stuck_until.(disk) <- now_ms +. t.cfg.Fault_model.stuck_window_ms;
    true
  end
  else false
