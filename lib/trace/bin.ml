module Ir = Dp_ir.Ir
module Fault_model = Dp_faults.Fault_model

let magic = "DPTB"
let format_version = 1
let default_chunk_bytes = 65536

(* Chunks larger than this are rejected as framing corruption rather than
   allocated: a flipped length byte must not turn into a 2 GB read. *)
let max_chunk_bytes = 1 lsl 26

type record = Req of Request.t | Hint of Hint.t | Faults of Fault_model.t
type error = { file : string; offset : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "%s:%d: %s" e.file e.offset e.msg
let error_to_string e = Format.asprintf "%a" pp_error e

let to_load_error (e : error) : Request.load_error =
  { file = e.file; line = e.offset; msg = e.msg }

(* Record tags: kind in the high nibble, per-kind flags in the low one. *)
let kind_request = 1 (* flags: bit0 write, bit1 arrival raw, bit2 think raw *)
let kind_compact = 2 (* flags: bit0 address/lba exactly as predicted *)
let kind_hint = 3 (* flags: bits0-1 action (D/U/S), bit2 at raw, bit3 lead raw *)
let kind_fault = 4

(* Scales for the opportunistic divide-before-varint trick below: timestamps
   are deltas of thousandths of a millisecond (whole-ms steps divide by
   1000), addresses step in stripe-unit multiples. *)
let time_scale = 1000
let addr_scale = 1024

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let put_u b v =
  let v = ref v in
  while !v land lnot 0x7f <> 0 do
    Buffer.add_char b (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char b (Char.chr !v)

let put_s b v = put_u b (zigzag v)

(* Signed varint with one spare bit marking "value divided by [scale]":
   exact multiples (the overwhelmingly common case for sequential address
   deltas and whole-ms time deltas) shrink by ~10 bits. *)
let put_scaled b ~scale v =
  if v mod scale = 0 then put_u b ((zigzag (v / scale) lsl 1) lor 1)
  else put_u b (zigzag v lsl 1)

(* A float is stored as a delta of thousandths-of-ms only when that integer
   reproduces its exact bits on decode — true for every value the text
   format's %.3f rendering parses back, since both are correctly rounded
   images of the same rational k/1000.  Anything else keeps raw bits. *)
let thousandths x =
  let k = Float.round (x *. 1000.0) in
  if Float.is_finite k && Float.abs k <= 4.5e15 then begin
    let i = int_of_float k in
    if Int64.bits_of_float (float_of_int i /. 1000.0) = Int64.bits_of_float x then Some i
    else None
  end
  else None

let q3 x = float_of_string (Printf.sprintf "%.3f" x)

let quantize (r : Request.t) =
  { r with arrival_ms = q3 r.arrival_ms; think_ms = q3 r.think_ms }

let quantize_hint (h : Hint.t) =
  let action =
    match h.action with Hint.Pre_spin_up lead -> Hint.Pre_spin_up (q3 lead) | a -> a
  in
  { h with at_ms = q3 h.at_ms; action }

(* Stream contexts, shared verbatim by encoder and decoder so deltas
   cancel.  A generated trace interleaves a few logical streams per
   (proc, disk) — e.g. two input arrays and an output array rotating in
   one loop body — and each stream is individually regular: constant
   address stride, repeated think/seg/mode, periodic arrivals.  Each
   (proc, disk) pair therefore keeps TWO contexts in MRU order; a tag
   bit says which one a record was coded against, so alternating
   streams keep hitting their own predictor.  Arrivals are predicted
   second-order (last arrival + last inter-arrival), so a steady rhythm
   encodes as zero. *)
type ctx = {
  mutable last_addr : int;
  mutable stride_addr : int;
  mutable last_lba : int;
  mutable stride_lba : int;
  mutable last_size : int;
  mutable prev_think : int; (* thousandths *)
  mutable prev_seg : int;
  mutable prev_mode : Ir.access_mode;
  mutable prev_arr : int; (* thousandths *)
  mutable prev_arr_d : int; (* last inter-arrival, thousandths *)
  mutable fresh : bool;
}

type slot = { mutable front : ctx; mutable back : ctx } (* MRU order *)

type predictors = {
  mutable prev_hint_at : int;
  slots : (int * int, slot) Hashtbl.t;
}

let predictors () = { prev_hint_at = 0; slots = Hashtbl.create 64 }

let fresh_ctx () =
  {
    last_addr = 0;
    stride_addr = 0;
    last_lba = 0;
    stride_lba = 0;
    last_size = 0;
    prev_think = 0;
    prev_seg = 0;
    prev_mode = Ir.Read;
    prev_arr = 0;
    prev_arr_d = 0;
    fresh = true;
  }

let slot_of p proc disk =
  match Hashtbl.find_opt p.slots (proc, disk) with
  | Some s -> s
  | None ->
      let s = { front = fresh_ctx (); back = fresh_ctx () } in
      Hashtbl.add p.slots (proc, disk) s;
      s

let pick slot index = if index = 0 then slot.front else slot.back

let touch slot index =
  if index = 1 then begin
    let c = slot.back in
    slot.back <- slot.front;
    slot.front <- c
  end

let predict_arr c = c.prev_arr + c.prev_arr_d

let ctx_update c ~arr ~think ~address ~lba ~size ~seg ~mode =
  (match arr with
  | Some a ->
      c.prev_arr_d <- a - c.prev_arr;
      c.prev_arr <- a
  | None -> ());
  (match think with Some t -> c.prev_think <- t | None -> ());
  c.stride_addr <- (if c.fresh then size else address - c.last_addr);
  c.stride_lba <- (if c.fresh then size else lba - c.last_lba);
  c.last_addr <- address;
  c.last_lba <- lba;
  c.last_size <- size;
  c.prev_seg <- seg;
  c.prev_mode <- mode;
  c.fresh <- false

(* {1 Encoding} *)

type enc = {
  out : string -> unit;
  chunk : Buffer.t;
  chunk_bytes : int;
  mutable nrecords : int;
  p : predictors;
}

let flush_chunk e =
  if Buffer.length e.chunk > 0 then begin
    let payload = Buffer.contents e.chunk in
    Buffer.clear e.chunk;
    let hdr = Buffer.create 8 in
    Buffer.add_char hdr 'C';
    Buffer.add_int32_le hdr (Int32.of_int (String.length payload));
    e.out (Buffer.contents hdr);
    e.out payload;
    e.out (Digest.string payload)
  end

let end_record e b =
  e.nrecords <- e.nrecords + 1;
  ignore b;
  if Buffer.length e.chunk >= e.chunk_bytes then flush_chunk e

let add_raw_float b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let len_u v =
  let rec go v n = if v land lnot 0x7f = 0 then n else go (v lsr 7) (n + 1) in
  go v 1

let len_scaled ~scale v =
  if v mod scale = 0 then len_u ((zigzag (v / scale) lsl 1) lor 1)
  else len_u (zigzag v lsl 1)

(* Encoded bytes this request would cost against context [c] (excluding
   the fields whose size does not depend on the context). *)
let ctx_cost c (r : Request.t) ~arr ~think =
  let d_addr = r.address - (c.last_addr + c.stride_addr) in
  let d_lba = r.lba - (c.last_lba + c.stride_lba) in
  let d_size = r.size - c.last_size in
  let compact =
    (match (arr, think) with Some _, Some t -> t = c.prev_think | _ -> false)
    && r.seg = c.prev_seg && r.mode = c.prev_mode && d_size = 0
  in
  let arr_len =
    match arr with
    | Some a -> len_scaled ~scale:time_scale (a - predict_arr c)
    | None -> 8
  in
  let addr_len =
    if compact && d_addr = 0 && d_lba = 0 then 0
    else len_scaled ~scale:addr_scale d_addr + len_scaled ~scale:addr_scale d_lba
  in
  let rest_len =
    if compact then 0
    else
      (match think with
      | Some t -> len_scaled ~scale:time_scale (t - c.prev_think)
      | None -> 8)
      + len_u (zigzag (r.seg - c.prev_seg))
      + len_scaled ~scale:addr_scale d_size
  in
  (arr_len + addr_len + rest_len, compact)

let add_request e (r : Request.t) =
  let b = e.chunk in
  let slot = slot_of e.p r.proc r.disk in
  let arr = thousandths r.arrival_ms in
  let think = thousandths r.think_ms in
  let cost0 = ctx_cost slot.front r ~arr ~think in
  let cost1 = ctx_cost slot.back r ~arr ~think in
  let index = if fst cost1 < fst cost0 then 1 else 0 in
  let c = pick slot index in
  let compact = snd (if index = 0 then cost0 else cost1) in
  let d_addr = r.address - (c.last_addr + c.stride_addr) in
  let d_lba = r.lba - (c.last_lba + c.stride_lba) in
  (if compact then begin
     let a = Option.get arr in
     let zero = d_addr = 0 && d_lba = 0 in
     Buffer.add_char b
       (Char.chr ((kind_compact lsl 4) lor (if zero then 1 else 0) lor (index lsl 1)));
     put_u b r.proc;
     put_u b r.disk;
     put_scaled b ~scale:time_scale (a - predict_arr c);
     if not zero then begin
       put_scaled b ~scale:addr_scale d_addr;
       put_scaled b ~scale:addr_scale d_lba
     end
   end
   else begin
     let flags =
       (match r.mode with Ir.Write -> 1 | Ir.Read -> 0)
       lor (if arr = None then 2 else 0)
       lor (if think = None then 4 else 0)
       lor (index lsl 3)
     in
     Buffer.add_char b (Char.chr ((kind_request lsl 4) lor flags));
     put_u b r.proc;
     put_u b r.disk;
     (match arr with
     | Some a -> put_scaled b ~scale:time_scale (a - predict_arr c)
     | None -> add_raw_float b r.arrival_ms);
     (match think with
     | Some t -> put_scaled b ~scale:time_scale (t - c.prev_think)
     | None -> add_raw_float b r.think_ms);
     put_s b (r.seg - c.prev_seg);
     put_scaled b ~scale:addr_scale d_addr;
     put_scaled b ~scale:addr_scale d_lba;
     put_scaled b ~scale:addr_scale (r.size - c.last_size)
   end);
  ctx_update c ~arr ~think ~address:r.address ~lba:r.lba ~size:r.size ~seg:r.seg
    ~mode:r.mode;
  touch slot index;
  end_record e b

let add_hint e (h : Hint.t) =
  let b = e.chunk in
  let p = e.p in
  let at = thousandths h.at_ms in
  let action_code, lead, rpm =
    match h.action with
    | Hint.Spin_down -> (0, None, None)
    | Hint.Pre_spin_up l -> (1, Some l, None)
    | Hint.Set_rpm r -> (2, None, Some r)
  in
  let lead_k = Option.map thousandths lead in
  let flags =
    action_code
    lor (if at = None then 4 else 0)
    lor if lead_k = Some None then 8 else 0
  in
  Buffer.add_char b (Char.chr ((kind_hint lsl 4) lor flags));
  put_u b h.disk;
  (match at with
  | Some a ->
      put_scaled b ~scale:time_scale (a - p.prev_hint_at);
      p.prev_hint_at <- a
  | None -> add_raw_float b h.at_ms);
  (match (lead, lead_k) with
  | Some _, Some (Some k) -> put_scaled b ~scale:time_scale k
  | Some l, _ -> add_raw_float b l
  | None, _ -> ());
  (match rpm with Some r -> put_u b r | None -> ());
  end_record e b

let add_fault e (f : Fault_model.t) =
  let b = e.chunk in
  let spec = Fault_model.to_spec f in
  Buffer.add_char b (Char.chr (kind_fault lsl 4));
  put_u b (String.length spec);
  Buffer.add_string b spec;
  end_record e b

let write ~out ?(chunk_bytes = default_chunk_bytes) ?rounds ?(hints = []) ?faults reqs =
  if chunk_bytes < 1 then invalid_arg "Trace.Bin: chunk_bytes must be >= 1";
  let e = { out; chunk = Buffer.create (chunk_bytes + 256); chunk_bytes; nrecords = 0; p = predictors () } in
  let hdr = Buffer.create 16 in
  Buffer.add_string hdr magic;
  Buffer.add_char hdr (Char.chr format_version);
  (match rounds with
  | None -> Buffer.add_char hdr '\000'
  | Some n ->
      if n < 0 then invalid_arg "Trace.Bin: rounds must be >= 0";
      Buffer.add_char hdr '\001';
      put_u hdr n);
  out (Buffer.contents hdr);
  List.iter (add_request e) reqs;
  List.iter (add_hint e) hints;
  Option.iter (add_fault e) faults;
  flush_chunk e;
  let trailer = Buffer.create 8 in
  Buffer.add_char trailer 'E';
  put_u trailer e.nrecords;
  out (Buffer.contents trailer)

let encode ?chunk_bytes ?rounds ?hints ?faults reqs =
  let buf = Buffer.create 4096 in
  write ~out:(Buffer.add_string buf) ?chunk_bytes ?rounds ?hints ?faults reqs;
  Buffer.contents buf

let save ?chunk_bytes ?hints ?faults path reqs =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write ~out:(output_string oc) ?chunk_bytes ?hints ?faults reqs)

(* {1 Decoding} *)

exception Fail of error

type src = {
  name : string;
  refill : bytes -> int -> int -> int; (* like [input]; 0 means EOF *)
  mutable pos : int; (* absolute byte offset consumed so far *)
}

let fail src offset fmt =
  Printf.ksprintf (fun msg -> raise (Fail { file = src.name; offset; msg })) fmt

(* Reads [len] bytes or reports how far it got (EOF mid-structure is the
   caller's truncation diagnostic, not an exception here). *)
let read_avail src buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = src.refill buf (off + !got) (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  src.pos <- src.pos + !got;
  !got

let read_exact src buf off len what =
  let at = src.pos in
  let got = read_avail src buf off len in
  if got < len then
    fail src at "truncated trace: %s needs %d bytes, found %d" what len got

let read_byte_opt src =
  let b = Bytes.create 1 in
  if read_avail src b 0 1 = 0 then None else Some (Bytes.get b 0)

let read_byte src what =
  match read_byte_opt src with
  | Some c -> Char.code c
  | None -> fail src src.pos "truncated trace: missing %s" what

let read_varint_src src what =
  let at = src.pos in
  let rec go shift acc =
    if shift > 62 then fail src at "malformed %s: varint too long" what;
    let c = read_byte src what in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

(* Cursor over one chunk payload; [base] is the chunk's absolute offset so
   record diagnostics carry file positions. *)
type cur = { src : src; buf : bytes; len : int; base : int; mutable cpos : int }

let cur_fail c fmt = fail c.src (c.base + c.cpos) fmt

let get_byte c what =
  if c.cpos >= c.len then cur_fail c "truncated record: %s runs past chunk end" what;
  let v = Char.code (Bytes.get c.buf c.cpos) in
  c.cpos <- c.cpos + 1;
  v

let get_u c what =
  let rec go shift acc =
    if shift > 62 then cur_fail c "malformed %s: varint too long" what;
    let b = get_byte c what in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_s c what = unzigzag (get_u c what)

let get_scaled c ~scale what =
  let u = get_u c what in
  if u land 1 = 1 then unzigzag (u lsr 1) * scale else unzigzag (u lsr 1)

let get_raw_float c what =
  if c.cpos + 8 > c.len then cur_fail c "truncated record: %s runs past chunk end" what;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.cpos) in
  c.cpos <- c.cpos + 8;
  v

let decode_request cu p ~flags : Request.t =
  let proc = get_u cu "request proc" in
  let disk = get_u cu "request disk" in
  let slot = slot_of p proc disk in
  let index = (flags lsr 3) land 1 in
  let c = pick slot index in
  let arr =
    if flags land 2 = 0 then
      Some (predict_arr c + get_scaled cu ~scale:time_scale "request arrival")
    else None
  in
  let arrival_ms =
    match arr with
    | Some a -> float_of_int a /. 1000.0
    | None -> get_raw_float cu "request arrival"
  in
  let think =
    if flags land 4 = 0 then
      Some (c.prev_think + get_scaled cu ~scale:time_scale "request think")
    else None
  in
  let think_ms =
    match think with
    | Some t -> float_of_int t /. 1000.0
    | None -> get_raw_float cu "request think"
  in
  let seg = c.prev_seg + get_s cu "request seg" in
  let address = c.last_addr + c.stride_addr + get_scaled cu ~scale:addr_scale "request address" in
  let lba = c.last_lba + c.stride_lba + get_scaled cu ~scale:addr_scale "request lba" in
  let size = c.last_size + get_scaled cu ~scale:addr_scale "request size" in
  let mode = if flags land 1 <> 0 then Ir.Write else Ir.Read in
  ctx_update c ~arr ~think ~address ~lba ~size ~seg ~mode;
  touch slot index;
  { arrival_ms; think_ms; seg; address; lba; size; mode; proc; disk }

let decode_compact cu p ~flags : Request.t =
  let proc = get_u cu "request proc" in
  let disk = get_u cu "request disk" in
  let slot = slot_of p proc disk in
  let index = (flags lsr 1) land 1 in
  let c = pick slot index in
  let a = predict_arr c + get_scaled cu ~scale:time_scale "request arrival" in
  let d_addr, d_lba =
    if flags land 1 <> 0 then (0, 0)
    else
      let da = get_scaled cu ~scale:addr_scale "request address" in
      let dl = get_scaled cu ~scale:addr_scale "request lba" in
      (da, dl)
  in
  let address = c.last_addr + c.stride_addr + d_addr in
  let lba = c.last_lba + c.stride_lba + d_lba in
  let size = c.last_size in
  let r : Request.t =
    {
      arrival_ms = float_of_int a /. 1000.0;
      think_ms = float_of_int c.prev_think /. 1000.0;
      seg = c.prev_seg;
      address;
      lba;
      size;
      mode = c.prev_mode;
      proc;
      disk;
    }
  in
  ctx_update c ~arr:(Some a) ~think:(Some c.prev_think) ~address ~lba ~size ~seg:r.seg
    ~mode:r.mode;
  touch slot index;
  r

let decode_hint c p ~flags : Hint.t =
  let disk = get_u c "hint disk" in
  let at_ms =
    if flags land 4 <> 0 then get_raw_float c "hint time"
    else begin
      let a = p.prev_hint_at + get_scaled c ~scale:time_scale "hint time" in
      p.prev_hint_at <- a;
      float_of_int a /. 1000.0
    end
  in
  let action =
    match flags land 3 with
    | 0 -> Hint.Spin_down
    | 1 ->
        let lead =
          if flags land 8 <> 0 then get_raw_float c "hint lead"
          else float_of_int (get_scaled c ~scale:time_scale "hint lead") /. 1000.0
        in
        Hint.Pre_spin_up lead
    | 2 -> Hint.Set_rpm (get_u c "hint rpm")
    | _ -> cur_fail c "bad hint action %d" (flags land 3)
  in
  { at_ms; disk; action }

let decode_fault c : Fault_model.t =
  let len = get_u c "fault spec length" in
  if len < 0 || c.cpos + len > c.len then
    cur_fail c "truncated record: fault spec runs past chunk end";
  let spec = Bytes.sub_string c.buf c.cpos len in
  let at = c.base + c.cpos in
  c.cpos <- c.cpos + len;
  match Fault_model.of_spec spec with
  | Ok f -> f
  | Error msg -> fail c.src at "bad fault spec %S: %s" spec msg

let decode_chunk c p ~on_record =
  let n = ref 0 in
  while c.cpos < c.len do
    let tag = get_byte c "record tag" in
    let flags = tag land 0xf in
    let record =
      match tag lsr 4 with
      | k when k = kind_request -> Req (decode_request c p ~flags)
      | k when k = kind_compact -> Req (decode_compact c p ~flags)
      | k when k = kind_hint -> Hint (decode_hint c p ~flags)
      | k when k = kind_fault -> Faults (decode_fault c)
      | k -> fail c.src (c.base + c.cpos - 1) "unknown record kind %d" k
    in
    incr n;
    on_record record
  done;
  !n

let fold_src src ~init ~f =
  let hdr = Bytes.create 6 in
  let at = src.pos in
  let got = read_avail src hdr 0 6 in
  if got < 4 || Bytes.sub_string hdr 0 4 <> magic then
    fail src at "bad magic: not a binary trace (expected %S header)" magic;
  if got < 6 then fail src at "truncated trace: header needs 6 bytes, found %d" got;
  let version = Char.code (Bytes.get hdr 4) in
  if version <> format_version then
    fail src 4 "unsupported binary trace version %d (this build reads version %d)" version
      format_version;
  let hflags = Char.code (Bytes.get hdr 5) in
  if hflags land lnot 1 <> 0 then fail src 5 "bad header flags 0x%x" hflags;
  let rounds = if hflags land 1 <> 0 then Some (read_varint_src src "header rounds") else None in
  let p = predictors () in
  let acc = ref init in
  let on_record r = acc := f !acc r in
  let chunk_buf = ref (Bytes.create 8192) in
  let nrecords = ref 0 in
  let lenb = Bytes.create 4 in
  let digest = Bytes.create 16 in
  let rec chunks () =
    let marker_at = src.pos in
    match read_byte_opt src with
    | None -> fail src marker_at "truncated trace: missing end-of-trace marker"
    | Some 'C' ->
        read_exact src lenb 0 4 "chunk length";
        let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
        if len <= 0 || len > max_chunk_bytes then
          fail src marker_at "bad chunk length %d" len;
        if Bytes.length !chunk_buf < len then
          chunk_buf := Bytes.create (max len (2 * Bytes.length !chunk_buf));
        let data_at = src.pos in
        read_exact src !chunk_buf 0 len "chunk payload";
        read_exact src digest 0 16 "chunk checksum";
        if Digest.subbytes !chunk_buf 0 len <> Bytes.to_string digest then
          fail src marker_at "chunk checksum mismatch (%d-byte chunk)" len;
        let c = { src; buf = !chunk_buf; len; base = data_at; cpos = 0 } in
        nrecords := !nrecords + decode_chunk c p ~on_record;
        chunks ()
    | Some 'E' ->
        let n = read_varint_src src "end-of-trace record count" in
        if n <> !nrecords then
          fail src marker_at "record count mismatch: trailer says %d, decoded %d" n !nrecords;
        (match read_byte_opt src with
        | None -> ()
        | Some _ -> fail src (src.pos - 1) "trailing bytes after end-of-trace marker")
    | Some c -> fail src marker_at "bad chunk marker %C (expected 'C' or 'E')" c
  in
  chunks ();
  (!acc, rounds)

let src_of_string ?(file = "<buffer>") s =
  let cursor = ref 0 in
  let refill buf off len =
    let n = min len (String.length s - !cursor) in
    Bytes.blit_string s !cursor buf off n;
    cursor := !cursor + n;
    n
  in
  { name = file; refill; pos = 0 }

let run_fold src ~init ~f =
  match fold_src src ~init ~f with
  | v -> Ok v
  | exception Fail e -> Error e

let collect (reqs, hints, faults) = function
  | Req r -> (r :: reqs, hints, faults)
  | Hint h -> (reqs, h :: hints, faults)
  | Faults f -> (reqs, hints, Some f)

let finish ((reqs, hints, faults), rounds) =
  (List.rev reqs, List.rev hints, faults, rounds)

let decode ?file s =
  Result.map finish (run_fold (src_of_string ?file s) ~init:([], [], None) ~f:collect)

let fold_path path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error { file = path; offset = 0; msg }
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> run_fold { name = path; refill = input ic; pos = 0 } ~init ~f)

let load_bin path = Result.map finish (fold_path path ~init:([], [], None) ~f:collect)

let sniff_string s = String.length s >= 4 && String.sub s 0 4 = magic

let sniff path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let b = Bytes.create 4 in
          match really_input ic b 0 4 with
          | () -> Bytes.to_string b = magic
          | exception End_of_file -> false)

let load_result path =
  if sniff path then
    match load_bin path with
    | Ok (reqs, hints, faults, _rounds) -> Ok (reqs, hints, faults)
    | Error e -> Error (to_load_error e)
  else Request.load_result path
