module Ir = Dp_ir.Ir

type t = {
  arrival_ms : float;
  think_ms : float;
  seg : int;
  address : int;
  lba : int;
  size : int;
  mode : Ir.access_mode;
  proc : int;
  disk : int;
}

let compare_arrival a b =
  match Float.compare a.arrival_ms b.arrival_ms with
  | 0 -> compare (a.proc, a.address) (b.proc, b.address)
  | c -> c

let mode_char = function Ir.Read -> 'R' | Ir.Write -> 'W'

let pp ppf r =
  Format.fprintf ppf "%.3f %.3f %d %d %d %d %c %d %d" r.arrival_ms r.think_ms r.seg
    r.address r.lba r.size (mode_char r.mode) r.proc r.disk

let to_channel ?(hints = []) oc reqs =
  output_string oc "# arrival_ms think_ms seg address lba size mode proc disk\n";
  List.iter (fun r -> output_string oc (Format.asprintf "%a\n" pp r)) reqs;
  if hints <> [] then begin
    output_string oc "# H at_ms disk D | H at_ms disk U lead_ms | H at_ms disk S rpm\n";
    List.iter
      (fun h -> output_string oc (Format.asprintf "%a\n" Hint.pp h))
      (List.sort Hint.compare_at hints)
  end

let save ?hints path reqs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ?hints oc reqs)

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ t; think; seg; addr; lba; size; mode; proc; disk ] ->
      let mode =
        match mode with
        | "R" -> Ir.Read
        | "W" -> Ir.Write
        | m -> failwith (Printf.sprintf "Request.load: bad mode %S" m)
      in
      {
        arrival_ms = float_of_string t;
        think_ms = float_of_string think;
        seg = int_of_string seg;
        address = int_of_string addr;
        lba = int_of_string lba;
        size = int_of_string size;
        mode;
        proc = int_of_string proc;
        disk = int_of_string disk;
      }
  | _ -> failwith (Printf.sprintf "Request.load: malformed line %S" line)

let of_lines_with_hints lines =
  let reqs = ref [] and hints = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if Hint.is_hint_line line then hints := Hint.parse_line line :: !hints
      else reqs := parse_line line :: !reqs)
    lines;
  (List.rev !reqs, List.rev !hints)

let of_lines lines = fst (of_lines_with_hints lines)

let load_with_hints path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines_with_hints (loop []))

let load path = fst (load_with_hints path)
