module Ir = Dp_ir.Ir
module Fault_model = Dp_faults.Fault_model

type t = {
  arrival_ms : float;
  think_ms : float;
  seg : int;
  address : int;
  lba : int;
  size : int;
  mode : Ir.access_mode;
  proc : int;
  disk : int;
}

type load_error = { file : string; line : int; msg : string }

let pp_load_error ppf e = Format.fprintf ppf "%s:%d: %s" e.file e.line e.msg
let load_error_to_string e = Format.asprintf "%a" pp_load_error e

let compare_arrival a b =
  match Float.compare a.arrival_ms b.arrival_ms with
  | 0 -> compare (a.proc, a.address) (b.proc, b.address)
  | c -> c

let mode_char = function Ir.Read -> 'R' | Ir.Write -> 'W'

let pp ppf r =
  Format.fprintf ppf "%.3f %.3f %d %d %d %d %c %d %d" r.arrival_ms r.think_ms r.seg
    r.address r.lba r.size (mode_char r.mode) r.proc r.disk

let is_fault_line line = String.length line >= 2 && line.[0] = 'F' && line.[1] = ' '

let to_channel ?(hints = []) ?faults oc reqs =
  output_string oc "# arrival_ms think_ms seg address lba size mode proc disk\n";
  List.iter (fun r -> output_string oc (Format.asprintf "%a\n" pp r)) reqs;
  if hints <> [] then begin
    output_string oc "# H at_ms disk D | H at_ms disk U lead_ms | H at_ms disk S rpm\n";
    List.iter
      (fun h -> output_string oc (Format.asprintf "%a\n" Hint.pp h))
      (List.sort Hint.compare_at hints)
  end;
  match faults with
  | None -> ()
  | Some f ->
      output_string oc "# F seed:rate:classes\n";
      output_string oc (Printf.sprintf "F %s\n" (Fault_model.to_spec f))

let save ?hints ?faults path reqs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?hints ?faults oc reqs)

let parse_line_res line =
  let ( let* ) = Result.bind in
  let num name s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad %s %S (expected a number)" name s)
  in
  let int name s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad %s %S (expected an integer)" name s)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ t; think; seg; addr; lba; size; mode; proc; disk ] ->
      let* mode =
        match mode with
        | "R" -> Ok Ir.Read
        | "W" -> Ok Ir.Write
        | m -> Error (Printf.sprintf "bad mode %S (expected R or W)" m)
      in
      let* arrival_ms = num "arrival_ms" t in
      let* think_ms = num "think_ms" think in
      let* seg = int "seg" seg in
      let* address = int "address" addr in
      let* lba = int "lba" lba in
      let* size = int "size" size in
      let* proc = int "proc" proc in
      let* disk = int "disk" disk in
      Ok { arrival_ms; think_ms; seg; address; lba; size; mode; proc; disk }
  | fields ->
      Error
        (Printf.sprintf
           "malformed request line %S (expected 9 fields: arrival_ms think_ms seg address \
            lba size mode proc disk; got %d)"
           line (List.length fields))

let parse_line line =
  match parse_line_res line with
  | Ok r -> r
  | Error msg -> failwith ("Request.load: " ^ msg)

(* Shared classifying parser over numbered lines; first error wins. *)
let of_numbered_lines lines =
  let ( let* ) = Result.bind in
  let* reqs, hints, faults =
    List.fold_left
      (fun acc (n, line) ->
        let* reqs, hints, faults = acc in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then acc
        else if Hint.is_hint_line line then
          match Hint.parse_line_res line with
          | Ok h -> Ok (reqs, h :: hints, faults)
          | Error msg -> Error (n, msg)
        else if is_fault_line line then
          match Fault_model.of_spec (String.sub line 2 (String.length line - 2)) with
          | Ok f -> Ok (reqs, hints, Some f)
          | Error msg -> Error (n, msg)
        else
          match parse_line_res line with
          | Ok r -> Ok (r :: reqs, hints, faults)
          | Error msg -> Error (n, msg))
      (Ok ([], [], None))
      lines
  in
  Ok (List.rev reqs, List.rev hints, faults)

let number lines = List.mapi (fun i line -> (i + 1, line)) lines

let of_lines_res lines =
  match of_numbered_lines (number lines) with
  | Ok _ as ok -> ok
  | Error (n, msg) -> Error (Printf.sprintf "line %d: %s" n msg)

let load_result path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        of_numbered_lines (number (loop [])))
  with
  | Ok _ as ok -> ok
  | Error (line, msg) -> Error { file = path; line; msg }
  | exception Sys_error msg -> Error { file = path; line = 0; msg }

let fail_of_error e = failwith (load_error_to_string e)

let load_full path =
  match load_result path with Ok parsed -> parsed | Error e -> fail_of_error e

let load_with_hints path =
  let reqs, hints, _ = load_full path in
  (reqs, hints)

let load path = fst (load_with_hints path)

let of_lines_full lines =
  match of_lines_res lines with Ok parsed -> parsed | Error msg -> failwith msg

let of_lines_with_hints lines =
  let reqs, hints, _ = of_lines_full lines in
  (reqs, hints)

let of_lines lines = fst (of_lines_with_hints lines)
