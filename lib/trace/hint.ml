type action = Spin_down | Pre_spin_up of float | Set_rpm of int

type t = { at_ms : float; disk : int; action : action }

let compare_at a b =
  match Float.compare a.at_ms b.at_ms with 0 -> compare a.disk b.disk | c -> c

let action_name = function
  | Spin_down -> "spin-down"
  | Pre_spin_up lead -> Printf.sprintf "pre-spin-up(%g ms)" lead
  | Set_rpm rpm -> Printf.sprintf "set-rpm(%d)" rpm

let pp ppf h =
  match h.action with
  | Spin_down -> Format.fprintf ppf "H %.3f %d D" h.at_ms h.disk
  | Pre_spin_up lead -> Format.fprintf ppf "H %.3f %d U %.3f" h.at_ms h.disk lead
  | Set_rpm rpm -> Format.fprintf ppf "H %.3f %d S %d" h.at_ms h.disk rpm

let is_hint_line line = String.length line >= 2 && line.[0] = 'H' && line.[1] = ' '

let parse_line_res line =
  let ( let* ) = Result.bind in
  let num name s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad hint %s %S (expected a number)" name s)
  in
  let int name s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad hint %s %S (expected an integer)" name s)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "H"; at; disk; "D" ] ->
      let* at_ms = num "time" at in
      let* disk = int "disk" disk in
      Ok { at_ms; disk; action = Spin_down }
  | [ "H"; at; disk; "U"; lead ] ->
      let* at_ms = num "time" at in
      let* disk = int "disk" disk in
      let* lead = num "lead" lead in
      Ok { at_ms; disk; action = Pre_spin_up lead }
  | [ "H"; at; disk; "S"; rpm ] ->
      let* at_ms = num "time" at in
      let* disk = int "disk" disk in
      let* rpm = int "rpm" rpm in
      Ok { at_ms; disk; action = Set_rpm rpm }
  | _ ->
      Error
        (Printf.sprintf "malformed hint %S (expected H t disk D | H t disk U lead | H t disk S rpm)"
           line)

let parse_line line =
  match parse_line_res line with
  | Ok h -> h
  | Error msg -> failwith ("Hint.parse_line: " ^ msg)
