type action = Spin_down | Pre_spin_up of float | Set_rpm of int

type t = { at_ms : float; disk : int; action : action }

let compare_at a b =
  match Float.compare a.at_ms b.at_ms with 0 -> compare a.disk b.disk | c -> c

let pp ppf h =
  match h.action with
  | Spin_down -> Format.fprintf ppf "H %.3f %d D" h.at_ms h.disk
  | Pre_spin_up lead -> Format.fprintf ppf "H %.3f %d U %.3f" h.at_ms h.disk lead
  | Set_rpm rpm -> Format.fprintf ppf "H %.3f %d S %d" h.at_ms h.disk rpm

let is_hint_line line = String.length line >= 2 && line.[0] = 'H' && line.[1] = ' '

let bad line = failwith (Printf.sprintf "Hint.parse_line: malformed hint %S" line)

let parse_line line =
  let num name s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> failwith (Printf.sprintf "Hint.parse_line: bad %s %S" name s)
  in
  let int name s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "Hint.parse_line: bad %s %S" name s)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "H"; at; disk; "D" ] -> { at_ms = num "time" at; disk = int "disk" disk; action = Spin_down }
  | [ "H"; at; disk; "U"; lead ] ->
      { at_ms = num "time" at; disk = int "disk" disk; action = Pre_spin_up (num "lead" lead) }
  | [ "H"; at; disk; "S"; rpm ] ->
      { at_ms = num "time" at; disk = int "disk" disk; action = Set_rpm (int "rpm" rpm) }
  | _ -> bad line
