module Ir = Dp_ir.Ir

(** Disk I/O requests — the record the paper's simulator consumes
    (Section 7.1): arrival time, start block, size, read/write, and the
    issuing processor; plus the I/O node the striping resolves it to. *)

type t = {
  arrival_ms : float;
      (** nominal arrival on the full-speed timeline (reference only;
          the simulator is closed-loop and derives actual issue times
          from [think_ms]) *)
  think_ms : float;
      (** compute time separating this request from the completion of
          the same processor's previous request (or from the segment
          barrier) — the closed-loop inter-request gap *)
  seg : int;  (** fork-join segment index (barriers between segments) *)
  address : int;  (** global byte address (start block x block size) *)
  lba : int;  (** on-node byte position (per-disk seek-distance space) *)
  size : int;  (** bytes *)
  mode : Ir.access_mode;
  proc : int;
  disk : int;  (** I/O node, resolved via the layout *)
}

val compare_arrival : t -> t -> int
(** Order by arrival time, ties by (proc, address). *)

val pp : Format.formatter -> t -> unit

(** {1 Trace files}

    Text format, one request per line:
    [arrival_ms think_ms seg address lba size R|W proc disk], with [#]
    comments.  Compiler power hints ({!Hint.t}) travel in the same file
    as [H ...] lines after the requests. *)

val save : ?hints:Hint.t list -> string -> t list -> unit
val load : string -> t list
(** Requests only; hint lines are parsed (and validated) but dropped.
    @raise Failure on a malformed line, request or hint. *)

val load_with_hints : string -> t list * Hint.t list
(** Requests and the hint stream, both in file order.
    @raise Failure on a malformed line. *)

val to_channel : ?hints:Hint.t list -> out_channel -> t list -> unit
val of_lines : string list -> t list
val of_lines_with_hints : string list -> t list * Hint.t list
