module Ir = Dp_ir.Ir

(** Disk I/O requests — the record the paper's simulator consumes
    (Section 7.1): arrival time, start block, size, read/write, and the
    issuing processor; plus the I/O node the striping resolves it to. *)

type t = {
  arrival_ms : float;
      (** nominal arrival on the full-speed timeline (reference only;
          the simulator is closed-loop and derives actual issue times
          from [think_ms]) *)
  think_ms : float;
      (** compute time separating this request from the completion of
          the same processor's previous request (or from the segment
          barrier) — the closed-loop inter-request gap *)
  seg : int;  (** fork-join segment index (barriers between segments) *)
  address : int;  (** global byte address (start block x block size) *)
  lba : int;  (** on-node byte position (per-disk seek-distance space) *)
  size : int;  (** bytes *)
  mode : Ir.access_mode;
  proc : int;
  disk : int;  (** I/O node, resolved via the layout *)
}

val compare_arrival : t -> t -> int
(** Order by arrival time, ties by (proc, address). *)

val pp : Format.formatter -> t -> unit

(** {1 Trace files}

    Text format, one request per line:
    [arrival_ms think_ms seg address lba size R|W proc disk], with [#]
    comments.  Compiler power hints ({!Hint.t}) travel in the same file
    as [H ...] lines after the requests, and an optional fault-injection
    window ({!Dp_faults.Fault_model.t}) as a single
    [F seed:rate:classes] line. *)

type load_error = {
  file : string;
  line : int;  (** 1-based; [0] when the file could not be opened *)
  msg : string;  (** names the offending field and its value *)
}

val pp_load_error : Format.formatter -> load_error -> unit
(** Rendered as [file:line: message] — the shape editors jump on. *)

val load_error_to_string : load_error -> string

val save : ?hints:Hint.t list -> ?faults:Dp_faults.Fault_model.t -> string -> t list -> unit

val load_result :
  string -> (t list * Hint.t list * Dp_faults.Fault_model.t option, load_error) result
(** Load a trace file without raising: requests and hints in file order,
    plus the fault window if the file carries an [F] line.  The first
    malformed line stops the parse and is reported with its file name,
    line number and offending field; an unreadable file reports the
    system error at line 0. *)

val load : string -> t list
(** Requests only; hint and fault lines are parsed (and validated) but
    dropped.  @raise Failure on a malformed line, request or hint. *)

val load_with_hints : string -> t list * Hint.t list
(** Requests and the hint stream, both in file order.
    @raise Failure on a malformed line. *)

val load_full : string -> t list * Hint.t list * Dp_faults.Fault_model.t option
(** Raising twin of {!load_result}.  @raise Failure on a malformed
    line, with the [file:line: message] rendering. *)

val to_channel : ?hints:Hint.t list -> ?faults:Dp_faults.Fault_model.t -> out_channel -> t list -> unit
val of_lines : string list -> t list
val of_lines_with_hints : string list -> t list * Hint.t list

val of_lines_res :
  string list -> (t list * Hint.t list * Dp_faults.Fault_model.t option, string) result
(** In-memory twin of {!load_result}; the error carries the (1-based)
    line number and offending field, without a file name. *)

val of_lines_full : string list -> t list * Hint.t list * Dp_faults.Fault_model.t option
(** @raise Failure on a malformed line. *)

val parse_line : string -> t
(** @raise Failure on a malformed request line. *)

val parse_line_res : string -> (t, string) result
(** Parse one request line; the error names the offending field. *)

val is_fault_line : string -> bool
(** Recognize a (trimmed) trace-file fault line by its [F ] prefix. *)
