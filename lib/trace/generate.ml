module Ir = Dp_ir.Ir
module Layout = Dp_layout.Layout
module Concrete = Dp_dependence.Concrete
module Parallelize = Dp_restructure.Parallelize

type stream = int array
type segments = stream list

let nest_table (prog : Ir.program) =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (n : Ir.nest) -> Hashtbl.add tbl n.nest_id n) prog.Ir.nests;
  tbl

let trace ?(cost = Cost_model.default) layout (prog : Ir.program) (g : Concrete.graph)
    per_proc =
  Dp_obs.Prof.span "trace.generate" @@ fun () ->
  let n_proc = Array.length per_proc in
  if n_proc = 0 then invalid_arg "Generate.trace: no processors";
  let n_segments = List.length per_proc.(0) in
  Array.iter
    (fun segs ->
      if List.length segs <> n_segments then
        invalid_arg "Generate.trace: processors disagree on segment count")
    per_proc;
  let nests = nest_table prog in
  let requests = ref [] in
  let clocks = Array.make n_proc 0.0 in
  (* Compute time accumulated since the same processor's last request
     (or segment start): the closed-loop think time. *)
  let think = Array.make n_proc 0.0 in
  let seg_index = ref 0 in
  (* Per-processor stream position on disk: (disk, end address) of the
     last request, to charge seeks only on discontiguous accesses. *)
  let last_pos = Array.make n_proc (-1, -1) in
  let run_instance proc seq =
    let inst = g.Concrete.instances.(seq) in
    let nest = Hashtbl.find nests inst.Concrete.nest_id in
    List.iter
      (fun (s : Ir.stmt) ->
        let compute = Cost_model.compute_ms cost ~cycles:s.work_cycles in
        clocks.(proc) <- clocks.(proc) +. compute;
        think.(proc) <- think.(proc) +. compute;
        let env = Ir.env_of_iteration nest inst.Concrete.iter in
        List.iter
          (fun (r : Ir.array_ref) ->
            let coords = List.map (Dp_affine.Affine.eval env) r.subscripts in
            let disk, address, size = Layout.request_of_element layout r.array coords in
            let lba = Layout.lba_of_element layout r.array coords in
            let seek_distance =
              match last_pos.(proc) with
              | d, e when d = disk && e >= 0 -> lba - e
              | _ -> max_int
            in
            last_pos.(proc) <- (disk, lba + size);
            requests :=
              {
                Request.arrival_ms = clocks.(proc);
                think_ms = think.(proc);
                seg = !seg_index;
                address;
                lba;
                size;
                mode = r.mode;
                proc;
                disk;
              }
              :: !requests;
            think.(proc) <- 0.0;
            clocks.(proc) <- clocks.(proc) +. Cost_model.service_ms ~seek_distance cost ~bytes:size)
          s.refs)
      nest.Ir.body
  in
  for seg = 0 to n_segments - 1 do
    seg_index := seg;
    for proc = 0 to n_proc - 1 do
      let stream = List.nth per_proc.(proc) seg in
      Array.iter (run_instance proc) stream
    done;
    (* Fork-join barrier: every processor resumes at the latest clock,
       and pending think time does not carry across the barrier. *)
    let latest = Array.fold_left max 0.0 clocks in
    Array.fill clocks 0 n_proc latest;
    Array.fill think 0 n_proc 0.0
  done;
  List.sort Request.compare_arrival !requests

let single_stream _g ~order = [| [ order ] |]

let original_segments (prog : Ir.program) (g : Concrete.graph)
    (a : Parallelize.assignment) =
  let n = Concrete.instance_count g in
  let nest_ids = List.map (fun (nest : Ir.nest) -> nest.Ir.nest_id) prog.Ir.nests in
  Array.init a.Parallelize.procs (fun proc ->
      List.map
        (fun nest_id ->
          let buf = ref [] in
          for seq = n - 1 downto 0 do
            if
              a.Parallelize.owner.(seq) = proc
              && g.Concrete.instances.(seq).Concrete.nest_id = nest_id
            then buf := seq :: !buf
          done;
          Array.of_list !buf)
        nest_ids)

let reordered_segments (a : Parallelize.assignment) ~order_of_proc =
  Array.init a.Parallelize.procs (fun proc -> [ order_of_proc proc ])

type summary = {
  requests : int;
  bytes : int;
  makespan_ms : float;
  compute_ms : float;
  io_ms : float;
}

let summarize ?(cost = Cost_model.default) reqs =
  let requests = List.length reqs in
  let bytes = List.fold_left (fun acc (r : Request.t) -> acc + r.size) 0 reqs in
  (* Seek-aware service accounting, mirroring trace generation: track the
     per-processor position on disk. *)
  let pos = Hashtbl.create 8 in
  let service (r : Request.t) =
    let seek_distance =
      match Hashtbl.find_opt pos r.proc with
      | Some (d, e) when d = r.disk -> r.lba - e
      | _ -> max_int
    in
    Hashtbl.replace pos r.proc (r.disk, r.lba + r.size);
    Cost_model.service_ms ~seek_distance cost ~bytes:r.size
  in
  let io_ms = List.fold_left (fun acc r -> acc +. service r) 0.0 reqs in
  Hashtbl.reset pos;
  let makespan_ms =
    List.fold_left
      (fun acc (r : Request.t) -> Float.max acc (r.arrival_ms +. service r))
      0.0 reqs
  in
  Hashtbl.reset pos;
  (* Compute time is whatever of the busy timeline is not nominal I/O;
     with one processor this is exact, with several it is the sum of
     per-processor busy gaps.  We approximate it from arrival spacing. *)
  let by_proc = Hashtbl.create 8 in
  List.iter
    (fun (r : Request.t) ->
      let prev = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt by_proc r.proc) in
      let last_end, compute = prev in
      let gap = Float.max 0.0 (r.arrival_ms -. last_end) in
      Hashtbl.replace by_proc r.proc (r.arrival_ms +. service r, compute +. gap))
    reqs;
  let compute_ms = Hashtbl.fold (fun _ (_, c) acc -> acc +. c) by_proc 0.0 in
  { requests; bytes; makespan_ms; compute_ms; io_ms }

let io_fraction s =
  let busy = s.compute_ms +. s.io_ms in
  if busy <= 0.0 then 0.0 else s.io_ms /. busy
