(** Compiler-directed power hints.

    The restructurer knows the per-disk access clusters statically, so it
    can tell the power manager what the future holds instead of leaving
    it to rediscover idleness reactively: spin a disk down the moment its
    cluster ends, start the spin-up early enough to hide the latency, or
    park the platters at a reduced speed for the duration of a gap.  The
    directives ride alongside the request stream in the trace file (see
    {!Request.save}) and are executed by the simulation engine when the
    policy's [proactive] flag is set. *)

type action =
  | Spin_down  (** spin down to standby now; the cluster just ended *)
  | Pre_spin_up of float
      (** [Pre_spin_up lead_ms]: start spinning up [lead_ms] before the
          next access so the platters are at speed on arrival *)
  | Set_rpm of int
      (** serve-free window: drop to this rotation speed, restoring full
          speed before the next access *)

type t = {
  at_ms : float;
      (** nominal (full-speed timeline) time of the directive; hints are
          matched to inter-arrival gaps by nominal time, so closed-loop
          drift cannot misroute them *)
  disk : int;
  action : action;
}

val compare_at : t -> t -> int
(** Order by nominal time, ties by disk. *)

val action_name : action -> string
(** Short human label: ["spin-down"], ["pre-spin-up(<lead> ms)"],
    ["set-rpm(<rpm>)"] — used by observability events. *)

val pp : Format.formatter -> t -> unit
(** One trace-file line: [H at_ms disk D], [H at_ms disk U lead_ms] or
    [H at_ms disk S rpm]. *)

val is_hint_line : string -> bool
(** Recognize a (trimmed) trace-file hint line by its [H ] prefix. *)

val parse_line : string -> t
(** @raise Failure on a malformed hint line. *)

val parse_line_res : string -> (t, string) result
(** Parse one hint line; the error names the offending field. *)
