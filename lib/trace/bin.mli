(** Binary trace codec: the streaming twin of the text trace format.

    A binary trace carries exactly what a text trace carries — requests,
    compiler hints and an optional fault window — framed for scale
    instead of for humans:

    - a 4-byte magic ({!magic}) plus a format version byte, so readers
      can sniff the format and a version bump orphans old files instead
      of misreading them;
    - records packed into {e chunks}, each prefixed with its byte length
      and trailed by an MD5 checksum, so truncation and bit rot are
      detected at the offending chunk, not as garbage downstream;
    - varint fields with zigzag delta encoding against cheap per-stream
      predictors (previous arrival, per-disk next-sequential address),
      so a request costs a handful of bytes instead of a 40-byte line.

    Timestamps take a fast path when the value is exactly a count of
    thousandths of a millisecond — true for every float that came from
    the text format's [%.3f] rendering, verified bit-for-bit at encode
    time — and fall back to raw IEEE-754 bits otherwise, so decoding
    always reproduces the exact floats that were encoded.  {!quantize}
    rounds a request to the text format's 3-decimal precision; a trace
    quantized before encoding converts losslessly [text ⇄ bin] (the
    fault window round-trips through its [seed:rate:classes] spec, with
    the same default spike/window lengths as the text [F] line).

    The reader is streaming: {!fold_path} decodes chunk by chunk into a
    reused buffer and never materializes the trace, so peak memory is
    bounded by the largest chunk regardless of trace length. *)

val magic : string
(** The 4 bytes a binary trace file starts with. *)

val format_version : int
(** Bump whenever the chunk framing or any record's byte meaning
    changes; readers reject other versions instead of misdecoding. *)

val default_chunk_bytes : int
(** Target chunk payload size (chunks end on record boundaries, so a
    chunk can exceed this by at most one record). *)

type record =
  | Req of Request.t
  | Hint of Hint.t
  | Faults of Dp_faults.Fault_model.t

type error = {
  file : string;
  offset : int;  (** byte offset of the offending structure *)
  msg : string;
}

val pp_error : Format.formatter -> error -> unit
(** Rendered as [file:offset: message]. *)

val error_to_string : error -> string

val to_load_error : error -> Request.load_error
(** The {!Request.load_error} twin: the [line] field carries the byte
    offset (text positions and binary offsets share the [file:pos:]
    diagnostic shape). *)

val quantize : Request.t -> Request.t
(** Round [arrival_ms]/[think_ms] to the exact floats the text format's
    [%.3f] rendering parses back — what a text round-trip of the request
    would produce.  Quantized requests always take the codec's compact
    timestamp path. *)

val quantize_hint : Hint.t -> Hint.t
(** Likewise for a hint's [at_ms] (and a pre-spin-up lead). *)

val encode :
  ?chunk_bytes:int ->
  ?rounds:int ->
  ?hints:Hint.t list ->
  ?faults:Dp_faults.Fault_model.t ->
  Request.t list ->
  string
(** Requests (then hints, then the fault window) as one binary trace.
    [rounds] is pipeline metadata (the reuse scheduler's round count)
    carried in the header — absent in CLI-written files. *)

val save :
  ?chunk_bytes:int ->
  ?hints:Hint.t list ->
  ?faults:Dp_faults.Fault_model.t ->
  string ->
  Request.t list ->
  unit
(** Streaming writer: chunks are flushed to the file as they fill. *)

val decode :
  ?file:string ->
  string ->
  (Request.t list * Hint.t list * Dp_faults.Fault_model.t option * int option, error) result
(** Whole-buffer decode (requests and hints in encoded order, plus the
    fault window and header [rounds] metadata).  Any framing violation —
    bad magic, version skew, truncated or checksum-failing chunk,
    trailing bytes, record-count mismatch — reports the byte offset of
    the offending structure. *)

val fold_path :
  string -> init:'a -> f:('a -> record -> 'a) -> ('a * int option, error) result
(** Streaming fold over a binary trace file: records are decoded chunk
    by chunk into a reused buffer and handed to [f] one at a time, so
    peak memory is bounded by the largest chunk — a 100x-scale trace
    folds in constant space.  Returns the fold result and the header's
    [rounds] metadata. *)

val sniff_string : string -> bool
(** Does this buffer start with {!magic}? *)

val sniff : string -> bool
(** Does this file start with {!magic}?  [false] on any read error. *)

val load_bin :
  string ->
  (Request.t list * Hint.t list * Dp_faults.Fault_model.t option * int option, error) result
(** {!fold_path} collecting into lists. *)

val load_result :
  string ->
  (Request.t list * Hint.t list * Dp_faults.Fault_model.t option, Request.load_error) result
(** Format-sniffing loader: binary traces (by {!magic}) decode through
    the streaming reader, anything else parses as the text format via
    {!Request.load_result}.  Binary framing errors surface with the
    byte offset in the [line] field (see {!to_load_error}). *)
