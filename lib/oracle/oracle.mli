module Disk_model = Dp_disksim.Disk_model
module Engine = Dp_disksim.Engine
module Timeline = Dp_disksim.Timeline
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint

(** Offline-optimal disk power scheduling.

    Given the complete per-disk request timeline — which the compiler
    knows statically after disk-reuse restructuring — compute the
    energy-optimal sequence of power states over every idle gap, and the
    resulting energy lower bound.  The bound quantifies how much energy
    the reactive TPM/DRPM policies leave on the table: every online
    policy run through {!Engine.simulate} consumes at least this much.

    The optimization is a dynamic program over per-gap power-state
    trajectories built from three transition families: stay powered-up
    idle, spin down to standby and back up, or dip to a reduced rotation
    speed (and, on the busy side, serve at a reduced speed).  Because a
    disk must be at serving speed at every interior gap boundary, the DP
    over the gap sequence decouples into independent per-gap
    subproblems; {!best_gap} solves one exactly over the discrete RPM
    ladder of the model, and {!schedule} strings the solutions into a
    plan. *)

type space =
  | Tpm_space  (** states of a two-mode disk: full-speed idle or standby *)
  | Drpm_space  (** states of a multi-speed disk: any RPM level *)
  | Full_space  (** both mechanisms available *)

val space_name : space -> string

val space_of_name : string -> space option
(** CLI policy-name spellings: ["oracle-tpm"], ["oracle-drpm"],
    ["oracle"] (both mechanisms); anything else is [None]. *)

type gap = {
  start_ms : float;
  len_ms : float;
  terminal : bool;
      (** no later request: the disk need not return to full speed *)
}

type action =
  | Stay_idle  (** idle at full speed for the whole gap *)
  | Spin_cycle  (** spin down, standby, spin back up (unless terminal) *)
  | Rpm_dip of int
      (** ramp down to this RPM, dwell, ramp back up (unless terminal) *)

type step = { gap : gap; action : action; energy_j : float }

type plan = { steps : step list; energy_j : float }

val best_gap : ?model:Disk_model.t -> space -> gap -> action * float
(** The optimal trajectory for one gap and its energy in joules:
    the exact minimum over the space's admissible trajectories.  A gap
    too short for any transition round trip degrades to [Stay_idle]. *)

val schedule : ?model:Disk_model.t -> space -> gap list -> plan
(** [Oracle.schedule]: the optimal per-gap plan for one disk. *)

val gaps_of_timeline : Timeline.t -> makespan_ms:float -> gap list array
(** Per-disk idle gaps: the complement of the busy spans within
    [0, makespan]; the last gap of a disk is terminal when it runs to the
    makespan. *)

(** {1 The energy lower bound} *)

type bound = {
  space : space;
  energy_j : float;  (** busy_j +. gap_j *)
  busy_j : float;
      (** servicing floor: in [Drpm_space]/[Full_space] each request is
          charged at its cheapest serving speed (energy, not time,
          minimized); in [Tpm_space] at full speed, as TPM serves *)
  gap_j : float;
      (** sum of per-gap energy floors.  In [Tpm_space] this is exactly
          the plan energy (two-mode trajectories are boundary-pinned, so
          the executable DP is the floor); with DRPM transitions in play
          the floor drops the ramp charges and boundary pinning — a
          multi-speed disk can cross gap boundaries at reduced speed,
          and closed-loop drift can stretch the realized timeline — so
          [gap_j <=] the sum of [per_disk] plan energies *)
  per_disk : plan array;
      (** the executable per-gap schedules from {!schedule} — what a
          compiler-directed policy can actually run, with real ramp and
          spin costs; their energy upper-bounds [gap_j] *)
  base : Engine.result;
      (** the no-PM reference run whose timeline defines the gaps *)
}

val lower_bound :
  ?model:Disk_model.t -> ?space:space -> disks:int -> Request.t list -> bound
(** Simulate the trace once without power management to fix the busy/idle
    structure, then bound every policy from below: optimal gap plans plus
    the cheapest admissible service energy.  [space] (default
    [Full_space]) restricts the transitions the oracle may use, giving
    the [Oracle-TPM] / [Oracle-DRPM] rows of the experiments matrix. *)

val lower_bound_energy_j :
  ?model:Disk_model.t -> ?space:space -> disks:int -> Request.t list -> float

val standby_floor_j : ?model:Disk_model.t -> Engine.result -> float
(** The analytic floor no schedule can beat: every disk draws at least
    standby power over the whole makespan.  Sandwiches the oracle:
    [standby_floor_j base <= lower_bound_energy_j reqs <= simulate p reqs]. *)

(** {1 Compiler-directed hints}

    The hint emitter is the compile-time half of the pipeline: it runs
    the same per-gap planner over the {e nominal} (full-speed) timeline
    that restructuring makes statically predictable, and emits the
    directive stream ({!Hint.t}) that {!Engine.simulate} executes —
    [Spin_down] / [Pre_spin_up] pairs where a spin cycle pays off,
    [Set_rpm] targets where a speed dip does. *)

val hints_of_trace :
  ?model:Disk_model.t -> ?space:space -> disks:int -> Request.t list -> Hint.t list
(** Hints sorted by nominal time.  [space] selects the mechanism the
    hints drive (default [Full_space]: emit for both; the engine's
    policy consumes the kind it understands and ignores the other).
    The gap prediction reads [Request.arrival_ms], so the trace must
    carry nominal arrivals — generator traces do; pass hand-built
    traces through {!nominalize} first (and feed the nominalized trace
    to the engine too, since hint routing matches on the same field). *)

val nominalize :
  ?model:Disk_model.t -> disks:int -> Request.t list -> Request.t list
(** Fill [Request.arrival_ms] with the full-speed reference timeline:
    the closed-loop no-PM schedule (per-processor think chains,
    fork-join segment barriers, FIFO disks with the engine's seek
    rule).  Returns the requests in issue order. *)

val pp_plan : Format.formatter -> plan -> unit
val pp_bound : Format.formatter -> bound -> unit
