module Disk_model = Dp_disksim.Disk_model
module Engine = Dp_disksim.Engine
module Timeline = Dp_disksim.Timeline
module Request = Dp_trace.Request
module Hint = Dp_trace.Hint

type space = Tpm_space | Drpm_space | Full_space

let space_name = function
  | Tpm_space -> "Oracle-TPM"
  | Drpm_space -> "Oracle-DRPM"
  | Full_space -> "Oracle"

let space_of_name = function
  | "oracle-tpm" -> Some Tpm_space
  | "oracle-drpm" -> Some Drpm_space
  | "oracle" -> Some Full_space
  | _ -> None

type gap = { start_ms : float; len_ms : float; terminal : bool }

type action = Stay_idle | Spin_cycle | Rpm_dip of int

type step = { gap : gap; action : action; energy_j : float }

type plan = { steps : step list; energy_j : float }

let ms_of_s s = s *. 1000.0
let j_of ~watts ~ms = watts *. ms /. 1000.0

(* Per-level ramp cost between full speed and [rpm], charged exactly as
   the engine's [drpm_shift] does: one level-transition time per step, at
   the active power of the faster of the two speeds.  The set of "faster"
   speeds is the same going down and coming back up, so one ramp cost
   serves both directions. *)
let ramp_cost model ~rpm =
  let step_ms = ms_of_s (Disk_model.drpm_level_transition_s model) in
  let rec go r (time_ms, energy_j) =
    if r <= rpm then (time_ms, energy_j)
    else
      go
        (r - model.Disk_model.rpm_step)
        ( time_ms +. step_ms,
          energy_j
          +. Disk_model.drpm_transition_j model ~rpm_from:r
               ~rpm_to:(r - model.Disk_model.rpm_step) )
  in
  go model.Disk_model.rpm_max (0.0, 0.0)

(* The candidate trajectories for one gap.  The disk enters at full
   speed and, unless the gap is terminal, must be back at full speed
   when the gap ends; a candidate is admissible when its transitions fit
   inside the gap.  This is the (tiny) per-gap dynamic program: the
   state space is {standby} ∪ RPM levels, and with both endpoints
   pinned the optimal trajectory is a single excursion, so enumerating
   the excursion depths solves the DP exactly. *)
let candidates space model (g : gap) =
  let m = model in
  let idle_full = (Stay_idle, j_of ~watts:(Disk_model.idle_power_w m ~rpm:m.Disk_model.rpm_max) ~ms:g.len_ms) in
  let spin_cycle =
    let sd_ms = ms_of_s m.Disk_model.spin_down_s in
    let su_ms = ms_of_s m.Disk_model.spin_up_s in
    if g.terminal then
      if g.len_ms >= sd_ms then
        [
          ( Spin_cycle,
            m.Disk_model.spin_down_j
            +. j_of ~watts:m.Disk_model.power_standby_w ~ms:(g.len_ms -. sd_ms) );
        ]
      else []
    else if g.len_ms >= sd_ms +. su_ms then
      [
        ( Spin_cycle,
          m.Disk_model.spin_down_j +. m.Disk_model.spin_up_j
          +. j_of ~watts:m.Disk_model.power_standby_w
               ~ms:(g.len_ms -. sd_ms -. su_ms) );
      ]
    else []
  in
  let dips =
    List.filter_map
      (fun rpm ->
        if rpm >= m.Disk_model.rpm_max then None
        else begin
          let ramp_ms, ramp_j = ramp_cost m ~rpm in
          let round_trip = if g.terminal then ramp_ms else 2.0 *. ramp_ms in
          if g.len_ms < round_trip then None
          else
            Some
              ( Rpm_dip rpm,
                (if g.terminal then ramp_j else 2.0 *. ramp_j)
                +. j_of ~watts:(Disk_model.idle_power_w m ~rpm)
                     ~ms:(g.len_ms -. round_trip) )
        end)
      (Disk_model.rpm_levels m)
  in
  idle_full
  ::
  (match space with
  | Tpm_space -> spin_cycle
  | Drpm_space -> dips
  | Full_space -> spin_cycle @ dips)

let best_gap ?(model = Disk_model.ultrastar_36z15) space g =
  List.fold_left
    (fun (ba, be) (a, e) -> if e < be then (a, e) else (ba, be))
    (Stay_idle, infinity) (candidates space model g)

let schedule ?(model = Disk_model.ultrastar_36z15) space gaps =
  let steps =
    List.map
      (fun g ->
        let action, energy_j = best_gap ~model space g in
        { gap = g; action; energy_j })
      gaps
  in
  { steps; energy_j = List.fold_left (fun acc (s : step) -> acc +. s.energy_j) 0.0 steps }

let gaps_of_timeline (t : Timeline.t) ~makespan_ms =
  Array.map
    (fun segs ->
      let eps = 1e-6 in
      let gaps = ref [] and cursor = ref 0.0 in
      List.iter
        (fun (s : Timeline.segment) ->
          match s.Timeline.state with
          | Timeline.Busy ->
              if s.Timeline.start_ms > !cursor +. eps then
                gaps :=
                  {
                    start_ms = !cursor;
                    len_ms = s.Timeline.start_ms -. !cursor;
                    terminal = false;
                  }
                  :: !gaps;
              cursor := Float.max !cursor s.Timeline.stop_ms
          | _ -> ())
        segs;
      if makespan_ms > !cursor +. eps then
        gaps :=
          { start_ms = !cursor; len_ms = makespan_ms -. !cursor; terminal = true }
          :: !gaps;
      List.rev !gaps)
    t

(* --- the servicing floor --- *)

(* Cheapest admissible service energy per request, walking each disk's
   stream in arrival order with the engine's seek-distance rule.  In
   [Tpm_space] disks serve at full speed (TPM has no other); with DRPM
   transitions available the oracle may serve at whichever level costs
   the least energy — reduced speed stretches the service but can still
   win, which is exactly the serve-at-reduced-RPM leg of the DP. *)
let busy_floor_j space model ~disks reqs =
  let levels =
    match space with
    | Tpm_space -> [ model.Disk_model.rpm_max ]
    | Drpm_space | Full_space -> Disk_model.rpm_levels model
  in
  let last_end = Array.make disks (-1) in
  List.fold_left
    (fun acc (r : Request.t) ->
      let seek_distance =
        if last_end.(r.Request.disk) < 0 then max_int
        else r.Request.lba - last_end.(r.Request.disk)
      in
      last_end.(r.Request.disk) <- r.Request.lba + r.Request.size;
      let cheapest =
        List.fold_left
          (fun best rpm ->
            let ms =
              Disk_model.service_ms ~seek_distance model ~rpm ~bytes:r.Request.size
            in
            Float.min best (j_of ~watts:(Disk_model.active_power_w model ~rpm) ~ms))
          infinity levels
      in
      acc +. cheapest)
    0.0
    (List.sort Request.compare_arrival reqs)

type bound = {
  space : space;
  energy_j : float;
  busy_j : float;
  gap_j : float;
  per_disk : plan array;
  base : Engine.result;
}

(* Per-gap energy floor for the lower bound.  Unlike the executable
   planner in [best_gap] — which pins the gap's endpoints at full speed
   and charges real ramp costs, because that is what the engine can
   actually run — the floor must also cover closed-loop drift: a policy
   that serves slowly stretches the timeline, and a multi-speed disk
   crosses gap boundaries at reduced speed without ever paying a ramp.

   - [Tpm_space] trajectories really are boundary-pinned (a two-mode
     disk serves only at full speed), and the per-gap optimum is
     monotone in the gap length, so the executable DP is the floor.
   - In [Drpm_space] any spinning trajectory draws at least the idle
     power of the lowest level at every instant, so the floor is that
     power times the gap — ramp-free, hence immune to boundary effects.
   - [Full_space] takes the min: every engine policy belongs to one of
     the two families. *)
let gap_floor_j space model (g : gap) =
  let idle_floor =
    let w =
      List.fold_left
        (fun acc rpm -> Float.min acc (Disk_model.idle_power_w model ~rpm))
        infinity (Disk_model.rpm_levels model)
    in
    j_of ~watts:w ~ms:g.len_ms
  in
  let tpm_floor () = snd (best_gap ~model Tpm_space g) in
  match space with
  | Tpm_space -> tpm_floor ()
  | Drpm_space -> idle_floor
  | Full_space -> Float.min (tpm_floor ()) idle_floor

let lower_bound ?(model = Disk_model.ultrastar_36z15) ?(space = Full_space) ~disks reqs =
  let base = Engine.simulate ~model ~record_timeline:true ~disks Dp_disksim.Policy.No_pm reqs in
  let timeline =
    match base.Engine.timeline with
    | Some t -> t
    | None -> assert false
  in
  let gaps = gaps_of_timeline timeline ~makespan_ms:base.Engine.makespan_ms in
  let per_disk = Array.map (fun gs -> schedule ~model space gs) gaps in
  let gap_j =
    Array.fold_left
      (fun acc gs -> List.fold_left (fun a g -> a +. gap_floor_j space model g) acc gs)
      0.0 gaps
  in
  let busy_j = busy_floor_j space model ~disks reqs in
  { space; energy_j = busy_j +. gap_j; busy_j; gap_j; per_disk; base }

let lower_bound_energy_j ?model ?space ~disks reqs =
  (lower_bound ?model ?space ~disks reqs).energy_j

let standby_floor_j ?(model = Disk_model.ultrastar_36z15) (r : Engine.result) =
  float_of_int (Array.length r.Engine.per_disk)
  *. j_of ~watts:model.Disk_model.power_standby_w ~ms:r.Engine.makespan_ms

(* --- nominal arrivals --- *)

(* Rebuild the full-speed reference timeline the closed-loop engine
   would realize under [No_pm]: per-processor chains issue [think_ms]
   after the previous completion, fork-join barriers separate segments,
   disks serve FIFO with the engine's seek rule.  Traces from the
   generator already carry these arrivals; hand-built traces (tests,
   external tools) usually carry zeros, which would hide every gap from
   the hint emitter and defeat the engine's nominal-time hint routing. *)
let nominalize ?(model = Disk_model.ultrastar_36z15) ~disks reqs =
  List.iter
    (fun (r : Request.t) ->
      if r.Request.disk < 0 || r.Request.disk >= disks then
        invalid_arg
          (Printf.sprintf "Oracle.nominalize: request on disk %d of %d" r.Request.disk disks))
    reqs;
  let reqs = List.sort Request.compare_arrival reqs in
  let n_proc = 1 + List.fold_left (fun acc (r : Request.t) -> max acc r.Request.proc) (-1) reqs in
  let n_seg = 1 + List.fold_left (fun acc (r : Request.t) -> max acc r.Request.seg) 0 reqs in
  let queues : Request.t list array array =
    Array.init n_seg (fun _ -> Array.make (max n_proc 1) [])
  in
  List.iter
    (fun (r : Request.t) -> queues.(r.Request.seg).(r.Request.proc) <- r :: queues.(r.Request.seg).(r.Request.proc))
    reqs;
  Array.iter (fun per_proc -> Array.iteri (fun p q -> per_proc.(p) <- List.rev q) per_proc) queues;
  let disk_now = Array.make disks 0.0 in
  let last_end = Array.make disks (-1) in
  let clocks = Array.make (max n_proc 1) 0.0 in
  let out = ref [] in
  for seg = 0 to n_seg - 1 do
    let pending = Array.copy queues.(seg) in
    let next_issue p =
      match pending.(p) with
      | [] -> infinity
      | r :: _ -> clocks.(p) +. r.Request.think_ms
    in
    let rec step () =
      let best = ref (-1) and best_t = ref infinity in
      for p = 0 to max n_proc 1 - 1 do
        let t = next_issue p in
        if t < !best_t then begin
          best := p;
          best_t := t
        end
      done;
      if !best >= 0 then begin
        let p = !best in
        match pending.(p) with
        | [] -> assert false
        | r :: rest ->
            pending.(p) <- rest;
            let d = r.Request.disk in
            let seek_distance =
              if last_end.(d) < 0 then max_int else r.Request.lba - last_end.(d)
            in
            last_end.(d) <- r.Request.lba + r.Request.size;
            let start = Float.max !best_t disk_now.(d) in
            let service =
              Disk_model.service_ms ~seek_distance model ~rpm:model.Disk_model.rpm_max
                ~bytes:r.Request.size
            in
            disk_now.(d) <- start +. service;
            clocks.(p) <- disk_now.(d);
            out := { r with Request.arrival_ms = !best_t } :: !out;
            step ()
      end
    in
    step ();
    let latest = Array.fold_left Float.max 0.0 clocks in
    Array.fill clocks 0 (Array.length clocks) latest
  done;
  List.rev !out

(* --- compiler-directed hints --- *)

(* Replay the nominal (full-speed) timeline the way the engine will —
   FIFO per disk, engine seek distances — and run the per-gap planner on
   every predicted gap.  Where a spin cycle pays off, emit the
   [Spin_down] / [Pre_spin_up] pair; where a speed dip does, emit the
   [Set_rpm] target.  The directives carry nominal timestamps, which is
   also how the engine routes them to gaps. *)
let hints_of_trace ?(model = Disk_model.ultrastar_36z15) ?(space = Full_space) ~disks reqs
    =
  let reqs = List.sort Request.compare_arrival reqs in
  let completion = Array.make disks 0.0 in
  let last_end = Array.make disks (-1) in
  let su_ms = ms_of_s model.Disk_model.spin_up_s in
  let hints = ref [] in
  let emit_for_gap ~disk ~start_ms ~len_ms ~next_arrival ~terminal =
    let g = { start_ms; len_ms; terminal } in
    (match space with
    | Tpm_space | Full_space -> (
        match best_gap ~model Tpm_space g with
        | Spin_cycle, _ ->
            hints := { Hint.at_ms = start_ms; disk; action = Hint.Spin_down } :: !hints;
            if not terminal then
              hints :=
                {
                  Hint.at_ms = next_arrival -. su_ms;
                  disk;
                  action = Hint.Pre_spin_up su_ms;
                }
                :: !hints
        | _ -> ())
    | Drpm_space -> ());
    match space with
    | Drpm_space | Full_space -> (
        match best_gap ~model Drpm_space g with
        | Rpm_dip rpm, _ ->
            hints := { Hint.at_ms = start_ms; disk; action = Hint.Set_rpm rpm } :: !hints
        | _ -> ())
    | Tpm_space -> ()
  in
  List.iter
    (fun (r : Request.t) ->
      let d = r.Request.disk in
      if r.Request.arrival_ms > completion.(d) then
        emit_for_gap ~disk:d ~start_ms:completion.(d)
          ~len_ms:(r.Request.arrival_ms -. completion.(d))
          ~next_arrival:r.Request.arrival_ms ~terminal:false;
      let seek_distance =
        if last_end.(d) < 0 then max_int else r.Request.lba - last_end.(d)
      in
      last_end.(d) <- r.Request.lba + r.Request.size;
      let service =
        Disk_model.service_ms ~seek_distance model ~rpm:model.Disk_model.rpm_max
          ~bytes:r.Request.size
      in
      completion.(d) <- Float.max completion.(d) r.Request.arrival_ms +. service)
    reqs;
  let makespan = Array.fold_left Float.max 0.0 completion in
  Array.iteri
    (fun d c ->
      if makespan > c then
        emit_for_gap ~disk:d ~start_ms:c ~len_ms:(makespan -. c) ~next_arrival:makespan
          ~terminal:true)
    completion;
  List.sort Hint.compare_at !hints

let pp_action ppf = function
  | Stay_idle -> Format.pp_print_string ppf "idle"
  | Spin_cycle -> Format.pp_print_string ppf "spin-cycle"
  | Rpm_dip rpm -> Format.fprintf ppf "dip@%d" rpm

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>%a@,total %.1f J@]"
    (Format.pp_print_list (fun ppf s ->
         Format.fprintf ppf "[%.0f..%.0f ms%s] %a: %.2f J" s.gap.start_ms
           (s.gap.start_ms +. s.gap.len_ms)
           (if s.gap.terminal then " terminal" else "")
           pp_action s.action s.energy_j))
    p.steps p.energy_j

let pp_bound ppf b =
  Format.fprintf ppf
    "%s lower bound: %.1f J (busy floor %.1f J + optimal gaps %.1f J; no-PM reference \
     %.1f J)"
    (space_name b.space) b.energy_j b.busy_j b.gap_j b.base.Engine.energy_j
